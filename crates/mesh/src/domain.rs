//! Problem domain: global index extent plus periodicity.

use crate::ibox::IBox;
use crate::intvect::IntVect;
use crate::DIM;

/// The global index-space extent of a computation plus per-direction
/// periodicity flags.
///
/// Periodic ghost filling is expressed through *shift images*: a point
/// outside the domain in a periodic direction corresponds to valid data
/// one domain-period away ([`ProblemDomain::periodic_shifts`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemDomain {
    domain: IBox,
    periodic: [bool; DIM],
}

impl ProblemDomain {
    /// A non-periodic domain over `domain`.
    pub fn new(domain: IBox) -> Self {
        ProblemDomain { domain, periodic: [false; DIM] }
    }

    /// A fully periodic domain over `domain`.
    pub fn periodic(domain: IBox) -> Self {
        ProblemDomain { domain, periodic: [true; DIM] }
    }

    /// A domain with per-direction periodicity.
    pub fn with_periodicity(domain: IBox, periodic: [bool; DIM]) -> Self {
        ProblemDomain { domain, periodic }
    }

    /// The domain box.
    #[inline]
    pub fn domain_box(&self) -> IBox {
        self.domain
    }

    /// Is direction `d` periodic?
    #[inline]
    pub fn is_periodic(&self, d: usize) -> bool {
        self.periodic[d]
    }

    /// True when every direction is periodic.
    #[inline]
    pub fn fully_periodic(&self) -> bool {
        self.periodic.iter().all(|&p| p)
    }

    /// Extent of the domain in direction `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> i32 {
        self.domain.extent(d)
    }

    /// All shift vectors `s` (including `ZERO`) such that data at `iv` may
    /// be found at `iv + s` inside the domain under periodicity, when the
    /// ghost reach is at most one domain period (asserted by callers).
    ///
    /// For a fully periodic 3-D domain this enumerates the 27 images
    /// `(i, j, k) * extent` for `i, j, k ∈ {-1, 0, 1}`.
    pub fn periodic_shifts(&self) -> Vec<IntVect> {
        let mut shifts = vec![IntVect::ZERO];
        for d in 0..DIM {
            if !self.periodic[d] {
                continue;
            }
            let ext = self.extent(d);
            let cur: Vec<IntVect> = shifts.clone();
            for s in cur {
                shifts.push(s.shifted(d, ext));
                shifts.push(s.shifted(d, -ext));
            }
        }
        shifts
    }

    /// Wrap a point into the domain along periodic directions. Points
    /// outside the domain in non-periodic directions are returned
    /// unchanged.
    pub fn wrap(&self, mut iv: IntVect) -> IntVect {
        for d in 0..DIM {
            if self.periodic[d] {
                let lo = self.domain.lo()[d];
                let ext = self.extent(d);
                let rel = (iv[d] - lo).rem_euclid(ext);
                iv[d] = lo + rel;
            }
        }
        iv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifts_non_periodic() {
        let d = ProblemDomain::new(IBox::cube(8));
        assert_eq!(d.periodic_shifts(), vec![IntVect::ZERO]);
        assert!(!d.fully_periodic());
    }

    #[test]
    fn shifts_fully_periodic() {
        let d = ProblemDomain::periodic(IBox::cube(8));
        let shifts = d.periodic_shifts();
        assert_eq!(shifts.len(), 27);
        assert!(d.fully_periodic());
        // Distinct.
        let mut s = shifts.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 27);
        // Every component is a multiple of the extent.
        for sh in shifts {
            for dd in 0..DIM {
                assert_eq!(sh[dd].rem_euclid(8), 0);
                assert!(sh[dd].abs() <= 8);
            }
        }
    }

    #[test]
    fn shifts_partially_periodic() {
        let d = ProblemDomain::with_periodicity(IBox::cube(4), [true, false, true]);
        let shifts = d.periodic_shifts();
        assert_eq!(shifts.len(), 9);
        for sh in shifts {
            assert_eq!(sh[1], 0);
        }
    }

    #[test]
    fn wrap_points() {
        let d = ProblemDomain::periodic(IBox::cube(8));
        assert_eq!(d.wrap(IntVect::new(-1, 8, 3)), IntVect::new(7, 0, 3));
        assert_eq!(d.wrap(IntVect::new(-9, 17, 0)), IntVect::new(7, 1, 0));
        let nd = ProblemDomain::new(IBox::cube(8));
        assert_eq!(nd.wrap(IntVect::new(-1, 8, 3)), IntVect::new(-1, 8, 3));
    }
}
