//! Level data: one `FArrayBox` per layout box, plus ghost exchange.

use crate::copier::ExchangePlan;
use crate::fab::FArrayBox;
use crate::ibox::IBox;
use crate::layout::DisjointBoxLayout;
use std::sync::{Arc, OnceLock};

/// A field over a [`DisjointBoxLayout`]: one [`FArrayBox`] per box, each
/// allocated over the box grown by `ghost` cells on every side.
///
/// Before the stencil computation of each step, [`LevelData::exchange`]
/// fills each box's ghost cells with data from the boxes (and periodic
/// images) sharing those global locations — the operation whose cost
/// motivates the paper's move to larger boxes (Figure 1).
#[derive(Clone, Debug)]
pub struct LevelData {
    layout: DisjointBoxLayout,
    ghost: i32,
    ncomp: usize,
    fabs: Vec<FArrayBox>,
    /// Cached exchange plan (built on first exchange; layouts are
    /// immutable so it never invalidates).
    plan: OnceLock<Arc<ExchangePlan>>,
}

impl LevelData {
    /// Allocate zero-initialized data with `ncomp` components and `ghost`
    /// ghost layers over every box of `layout`.
    pub fn new(layout: DisjointBoxLayout, ncomp: usize, ghost: i32) -> Self {
        assert!(ghost >= 0);
        if let Some(b) = layout.boxes().first() {
            // Exchange assumes the ghost reach does not exceed one box, so
            // a ghost region touches only face/edge/corner neighbors.
            for d in 0..crate::DIM {
                assert!(
                    ghost <= b.extent(d),
                    "ghost width {ghost} exceeds box extent {}",
                    b.extent(d)
                );
            }
        }
        let fabs = layout.boxes().iter().map(|b| FArrayBox::new(b.grown(ghost), ncomp)).collect();
        LevelData { layout, ghost, ncomp, fabs, plan: OnceLock::new() }
    }

    /// The layout.
    #[inline]
    pub fn layout(&self) -> &DisjointBoxLayout {
        &self.layout
    }

    /// Ghost layer width.
    #[inline]
    pub fn ghost(&self) -> i32 {
        self.ghost
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Number of boxes.
    #[inline]
    pub fn num_boxes(&self) -> usize {
        self.fabs.len()
    }

    /// The valid (non-ghost) region of box `i`.
    #[inline]
    pub fn valid_box(&self, i: usize) -> IBox {
        self.layout.get(i)
    }

    /// Data of box `i` (defined over the grown region).
    #[inline]
    pub fn fab(&self, i: usize) -> &FArrayBox {
        &self.fabs[i]
    }

    /// Mutable data of box `i`.
    #[inline]
    pub fn fab_mut(&mut self, i: usize) -> &mut FArrayBox {
        &mut self.fabs[i]
    }

    /// All box data, mutably — used by the schedule executors to hand
    /// disjoint boxes to different threads.
    #[inline]
    pub fn fabs_mut(&mut self) -> &mut [FArrayBox] {
        &mut self.fabs
    }

    /// All box data.
    #[inline]
    pub fn fabs(&self) -> &[FArrayBox] {
        &self.fabs
    }

    /// Total heap bytes across all boxes (ghosts included); the quantity
    /// Figure 1's ghost-ratio analysis is about.
    pub fn total_bytes(&self) -> usize {
        self.fabs.iter().map(|f| f.bytes()).sum()
    }

    /// Fill every box (including ghosts) with the deterministic synthetic
    /// function, consistent across boxes at shared global indices.
    pub fn fill_synthetic(&mut self, seed: u64) {
        for f in &mut self.fabs {
            f.fill_synthetic(seed);
        }
    }

    /// Set every value (including ghosts) in every box.
    pub fn set_val(&mut self, v: f64) {
        for f in &mut self.fabs {
            f.set_val(v);
        }
    }

    /// Sum of component `c` over all *valid* regions.
    pub fn sum_comp(&self, c: usize) -> f64 {
        (0..self.num_boxes()).map(|i| self.fabs[i].sum_comp(c, self.valid_box(i))).sum()
    }

    /// The cached exchange plan for this level (built on first use).
    pub fn exchange_plan(&self) -> Arc<ExchangePlan> {
        self.plan.get_or_init(|| Arc::new(ExchangePlan::build(&self.layout, self.ghost))).clone()
    }

    /// Fill all ghost cells from the valid regions of neighboring boxes,
    /// respecting the domain's periodicity. Ghost cells that lie outside a
    /// non-periodic domain are left untouched (boundary conditions are the
    /// solver's job; see [`crate::boundary`]).
    ///
    /// The copy structure is computed once per level and replayed
    /// (Chombo's `Copier` pattern).
    pub fn exchange(&mut self) {
        if self.ghost == 0 {
            return;
        }
        let plan = self.exchange_plan();
        self.exchange_with(&plan);
    }

    /// Replay a prebuilt [`ExchangePlan`] (which must have been built for
    /// this level's layout and ghost width).
    pub fn exchange_with(&mut self, plan: &ExchangePlan) {
        assert_eq!(plan.ghost(), self.ghost, "plan built for a different ghost width");
        for op in plan.ops() {
            if op.dst != op.src {
                let (dst, src) = index_pair(&mut self.fabs, op.dst, op.src);
                dst.copy_from_shifted(src, op.region, op.shift);
            } else {
                // Periodic self-image: stage through a buffer.
                let mut buf = FArrayBox::new(op.region, self.ncomp);
                buf.copy_from_shifted(&self.fabs[op.dst], op.region, op.shift);
                self.fabs[op.dst].copy_from(&buf, op.region);
            }
        }
    }
}

/// Borrow two distinct elements of a slice mutably/immutably.
fn index_pair(fabs: &mut [FArrayBox], dst: usize, src: usize) -> (&mut FArrayBox, &FArrayBox) {
    debug_assert_ne!(dst, src);
    if dst < src {
        let (a, b) = fabs.split_at_mut(src);
        (&mut a[dst], &b[0])
    } else {
        let (a, b) = fabs.split_at_mut(dst);
        (&mut b[0], &a[src])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ProblemDomain;
    use crate::fab::synthetic_value;

    fn level(n: i32, box_size: i32, ghost: i32, periodic: bool) -> LevelData {
        let domain = IBox::cube(n);
        let problem =
            if periodic { ProblemDomain::periodic(domain) } else { ProblemDomain::new(domain) };
        let layout = DisjointBoxLayout::uniform(problem, box_size);
        LevelData::new(layout, 2, ghost)
    }

    /// After filling valid regions only and exchanging, every interior
    /// ghost cell must hold the synthetic value of its global location.
    fn check_exchange(n: i32, box_size: i32, ghost: i32, periodic: bool) {
        let mut ld = level(n, box_size, ghost, periodic);
        let seed = 7;
        // Fill only valid regions; ghosts get a sentinel.
        ld.set_val(f64::NAN);
        for i in 0..ld.num_boxes() {
            let vb = ld.valid_box(i);
            let fab = ld.fab_mut(i);
            for c in 0..2 {
                for iv in vb.iter() {
                    fab.set(iv, c, synthetic_value(iv, c, seed));
                }
            }
        }
        ld.exchange();
        let problem = ld.layout().problem();
        let domain = problem.domain_box();
        for i in 0..ld.num_boxes() {
            let vb = ld.valid_box(i);
            let gb = vb.grown(ghost);
            let fab = ld.fab(i);
            for c in 0..2 {
                for iv in gb.iter() {
                    let wrapped = problem.wrap(iv);
                    if domain.contains(wrapped) && (periodic || domain.contains(iv)) {
                        let expect = synthetic_value(wrapped, c, seed);
                        assert_eq!(
                            fab.at(iv, c),
                            expect,
                            "box {i} iv {iv:?} c {c} (n={n}, bs={box_size}, g={ghost})"
                        );
                    } else {
                        assert!(fab.at(iv, c).is_nan(), "exterior ghost overwritten at {iv:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn exchange_interior_non_periodic() {
        check_exchange(16, 8, 2, false);
    }

    #[test]
    fn exchange_periodic() {
        check_exchange(16, 8, 2, true);
    }

    #[test]
    fn exchange_periodic_single_box() {
        // One box: all ghost data comes from periodic self-images.
        check_exchange(8, 8, 2, true);
    }

    #[test]
    fn exchange_periodic_wide_ghost() {
        check_exchange(12, 4, 3, true);
    }

    #[test]
    fn exchange_no_ghost_is_noop() {
        let mut ld = level(8, 4, 0, true);
        ld.fill_synthetic(3);
        let before: Vec<f64> = ld.fab(0).data().to_vec();
        ld.exchange();
        assert_eq!(ld.fab(0).data(), &before[..]);
    }

    #[test]
    fn total_bytes_accounts_ghosts() {
        let ld = level(16, 8, 2, true);
        let per_box = 12usize.pow(3) * 2 * 8;
        assert_eq!(ld.total_bytes(), per_box * 8);
    }

    #[test]
    fn sum_comp_over_valid_only() {
        let mut ld = level(8, 4, 1, true);
        ld.set_val(1.0); // ghosts too
        let s = ld.sum_comp(0);
        assert_eq!(s, 8.0 * 8.0 * 8.0);
    }

    #[test]
    #[should_panic(expected = "ghost width")]
    fn ghost_wider_than_box_rejected() {
        let _ = level(8, 4, 5, true);
    }
}
