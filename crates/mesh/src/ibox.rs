//! Rectangular regions of index space.

use crate::intvect::IntVect;
use crate::DIM;
use std::fmt;

/// Centering of a box: cell-centered, or node-centered in one direction
/// (a *face* box holding fluxes for faces normal to that direction).
///
/// Chombo represents face data as a cell box "surrounded by nodes" in one
/// direction; we track the centering explicitly so that face boxes created
/// by [`IBox::surrounding_faces`] are self-describing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum Centering {
    /// Values live at cell centers.
    #[default]
    Cell,
    /// Values live on faces normal to the given direction.
    Face(usize),
}

/// A rectangular region of index space with **inclusive** bounds
/// (`lo..=hi` in each direction), Chombo-style.
///
/// An empty box is represented by any `hi` component `<` its `lo`
/// component; [`IBox::is_empty`] checks for that.
///
/// ```
/// use pdesched_mesh::IBox;
/// let b = IBox::cube(16);
/// assert_eq!(b.num_pts(), 4096);
/// // 2 ghost layers, faces normal to x:
/// assert_eq!(b.grown(2).num_pts(), 8000);
/// assert_eq!(b.surrounding_faces(0).num_pts(), 17 * 16 * 16);
/// // 4^3 tiles partition the box:
/// assert_eq!(b.tiles(4).len(), 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IBox {
    lo: IntVect,
    hi: IntVect,
    centering: Centering,
}

impl IBox {
    /// A cell-centered box spanning `lo..=hi`.
    #[inline]
    pub fn new(lo: IntVect, hi: IntVect) -> Self {
        IBox { lo, hi, centering: Centering::Cell }
    }

    /// The cell-centered cube `[0, n-1]^DIM`.
    #[inline]
    pub fn cube(n: i32) -> Self {
        IBox::new(IntVect::ZERO, IntVect::splat(n - 1))
    }

    /// A canonical empty box.
    #[inline]
    pub fn empty() -> Self {
        IBox::new(IntVect::ZERO, IntVect::splat(-1))
    }

    /// Low corner.
    #[inline]
    pub fn lo(&self) -> IntVect {
        self.lo
    }

    /// High corner (inclusive).
    #[inline]
    pub fn hi(&self) -> IntVect {
        self.hi
    }

    /// Centering of this box.
    #[inline]
    pub fn centering(&self) -> Centering {
        self.centering
    }

    /// Number of points along each direction (`hi - lo + 1`, clamped at 0).
    #[inline]
    pub fn size(&self) -> IntVect {
        let mut v = [0; DIM];
        for d in 0..DIM {
            v[d] = (self.hi[d] - self.lo[d] + 1).max(0);
        }
        IntVect(v)
    }

    /// Extent in direction `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> i32 {
        (self.hi[d] - self.lo[d] + 1).max(0)
    }

    /// Total number of points.
    #[inline]
    pub fn num_pts(&self) -> usize {
        self.size().product()
    }

    /// True if the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..DIM).any(|d| self.hi[d] < self.lo[d])
    }

    /// True if `iv` lies inside the box.
    #[inline]
    pub fn contains(&self, iv: IntVect) -> bool {
        iv.all_ge(self.lo) && iv.all_le(self.hi)
    }

    /// True if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &IBox) -> bool {
        other.is_empty() || (other.lo.all_ge(self.lo) && other.hi.all_le(self.hi))
    }

    /// Intersection of two boxes (empty box if disjoint). Centering of
    /// `self` is retained; intersecting boxes of different centerings is a
    /// logic error and panics in debug builds.
    #[inline]
    pub fn intersect(&self, other: &IBox) -> IBox {
        debug_assert_eq!(self.centering, other.centering);
        IBox { lo: self.lo.max(other.lo), hi: self.hi.min(other.hi), centering: self.centering }
    }

    /// True if the two boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &IBox) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Grow by `g` points on **both** sides in every direction
    /// (negative shrinks). This is how a ghost region is obtained.
    #[inline]
    pub fn grown(&self, g: i32) -> IBox {
        IBox {
            lo: self.lo - IntVect::splat(g),
            hi: self.hi + IntVect::splat(g),
            centering: self.centering,
        }
    }

    /// Grow by a per-direction amount on both sides.
    #[inline]
    pub fn grown_by(&self, g: IntVect) -> IBox {
        IBox { lo: self.lo - g, hi: self.hi + g, centering: self.centering }
    }

    /// Grow by `g` on both sides in direction `d` only.
    #[inline]
    pub fn grown_dir(&self, d: usize, g: i32) -> IBox {
        IBox { lo: self.lo.shifted(d, -g), hi: self.hi.shifted(d, g), centering: self.centering }
    }

    /// Translate the whole box by `offset`.
    #[inline]
    pub fn shifted(&self, offset: IntVect) -> IBox {
        IBox { lo: self.lo + offset, hi: self.hi + offset, centering: self.centering }
    }

    /// The face-centered box holding the faces of `self` normal to
    /// direction `d`: one more point than `self` along `d`
    /// (`N+1` faces bound `N` cells).
    #[inline]
    pub fn surrounding_faces(&self, d: usize) -> IBox {
        debug_assert_eq!(self.centering, Centering::Cell);
        IBox { lo: self.lo, hi: self.hi.shifted(d, 1), centering: Centering::Face(d) }
    }

    /// Reinterpret as cell-centered (used when a face box's index range is
    /// needed as a raw iteration domain).
    #[inline]
    pub fn as_cell(&self) -> IBox {
        IBox { lo: self.lo, hi: self.hi, centering: Centering::Cell }
    }

    /// Iterate over all points in the box in storage order
    /// (x fastest, then y, then z).
    pub fn iter(&self) -> BoxIter {
        BoxIter { b: *self, cur: self.lo, done: self.is_empty() }
    }

    /// Chop the box into sub-boxes of at most `tile` points per direction,
    /// in storage order. The final tile in each direction may be smaller
    /// when `tile` does not divide the extent (edge-tile handling the
    /// paper's generated loop bounds must also deal with).
    pub fn tiles(&self, tile: i32) -> Vec<IBox> {
        assert!(tile >= 1);
        if self.is_empty() {
            return Vec::new();
        }
        let n = self.size();
        let counts: Vec<i32> = (0..DIM).map(|d| (n[d] + tile - 1) / tile).collect();
        let mut out = Vec::with_capacity(counts.iter().map(|&c| c as usize).product());
        for tz in 0..counts[2] {
            for ty in 0..counts[1] {
                for tx in 0..counts[0] {
                    let tlo = IntVect::new(
                        self.lo[0] + tx * tile,
                        self.lo[1] + ty * tile,
                        self.lo[2] + tz * tile,
                    );
                    let thi = IntVect::new(
                        (tlo[0] + tile - 1).min(self.hi[0]),
                        (tlo[1] + tile - 1).min(self.hi[1]),
                        (tlo[2] + tile - 1).min(self.hi[2]),
                    );
                    out.push(IBox { lo: tlo, hi: thi, centering: self.centering });
                }
            }
        }
        out
    }

    /// Number of tiles per direction for tile size `tile`.
    pub fn tile_counts(&self, tile: i32) -> IntVect {
        let n = self.size();
        IntVect::new((n[0] + tile - 1) / tile, (n[1] + tile - 1) / tile, (n[2] + tile - 1) / tile)
    }
}

impl fmt::Debug for IBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IBox[{:?}..{:?} {:?}]", self.lo, self.hi, self.centering)
    }
}

/// Iterator over the points of an [`IBox`] in storage order.
pub struct BoxIter {
    b: IBox,
    cur: IntVect,
    done: bool,
}

impl Iterator for BoxIter {
    type Item = IntVect;

    fn next(&mut self) -> Option<IntVect> {
        if self.done {
            return None;
        }
        let out = self.cur;
        // Advance x fastest.
        self.cur[0] += 1;
        for d in 0..DIM - 1 {
            if self.cur[d] > self.b.hi[d] {
                self.cur[d] = self.b.lo[d];
                self.cur[d + 1] += 1;
            }
        }
        if self.cur[DIM - 1] > self.b.hi[DIM - 1] {
            self.done = true;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        // Remaining count: exact.
        let n = self.b.size();
        let rel = [
            (self.cur[0] - self.b.lo()[0]) as usize,
            (self.cur[1] - self.b.lo()[1]) as usize,
            (self.cur[2] - self.b.lo()[2]) as usize,
        ];
        let consumed = (rel[2] * n[1] as usize + rel[1]) * n[0] as usize + rel[0];
        let rem = self.b.num_pts() - consumed;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BoxIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let b = IBox::new(IntVect::new(0, 0, 0), IntVect::new(3, 1, 2));
        assert_eq!(b.size(), IntVect::new(4, 2, 3));
        assert_eq!(b.num_pts(), 24);
        assert!(!b.is_empty());
        assert!(IBox::empty().is_empty());
        assert_eq!(IBox::empty().num_pts(), 0);
    }

    #[test]
    fn cube() {
        let b = IBox::cube(16);
        assert_eq!(b.lo(), IntVect::ZERO);
        assert_eq!(b.hi(), IntVect::splat(15));
        assert_eq!(b.num_pts(), 16 * 16 * 16);
    }

    #[test]
    fn contains_and_intersect() {
        let a = IBox::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7));
        let b = IBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11));
        let i = a.intersect(&b);
        assert_eq!(i.lo(), IntVect::splat(4));
        assert_eq!(i.hi(), IntVect::splat(7));
        assert!(a.contains(IntVect::new(7, 0, 3)));
        assert!(!a.contains(IntVect::new(8, 0, 3)));
        assert!(a.contains_box(&i));
        assert!(a.intersects(&b));
        let c = IBox::new(IntVect::splat(100), IntVect::splat(110));
        assert!(!a.intersects(&c));
        assert!(a.intersect(&c).is_empty());
        // Every box contains the empty box.
        assert!(c.contains_box(&IBox::empty()));
    }

    #[test]
    fn grow_shift() {
        let b = IBox::cube(8);
        let g = b.grown(2);
        assert_eq!(g.lo(), IntVect::splat(-2));
        assert_eq!(g.hi(), IntVect::splat(9));
        assert_eq!(g.grown(-2), b);
        let s = b.shifted(IntVect::new(1, -1, 0));
        assert_eq!(s.lo(), IntVect::new(1, -1, 0));
        let gd = b.grown_dir(1, 3);
        assert_eq!(gd.lo(), IntVect::new(0, -3, 0));
        assert_eq!(gd.hi(), IntVect::new(7, 10, 7));
    }

    #[test]
    fn face_boxes() {
        let b = IBox::cube(4);
        for d in 0..DIM {
            let f = b.surrounding_faces(d);
            assert_eq!(f.centering(), Centering::Face(d));
            assert_eq!(f.extent(d), 5);
            for dd in 0..DIM {
                if dd != d {
                    assert_eq!(f.extent(dd), 4);
                }
            }
        }
    }

    #[test]
    fn iter_order_and_count() {
        let b = IBox::new(IntVect::new(1, 2, 3), IntVect::new(2, 3, 4));
        let pts: Vec<_> = b.iter().collect();
        assert_eq!(pts.len(), b.num_pts());
        assert_eq!(pts[0], IntVect::new(1, 2, 3));
        assert_eq!(pts[1], IntVect::new(2, 2, 3)); // x fastest
        assert_eq!(pts[2], IntVect::new(1, 3, 3));
        assert_eq!(*pts.last().unwrap(), IntVect::new(2, 3, 4));
        // All distinct, all contained.
        for p in &pts {
            assert!(b.contains(*p));
        }
        let mut sorted = pts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), pts.len());
        // size_hint is exact at every step.
        let mut it = b.iter();
        let mut remaining = b.num_pts();
        loop {
            assert_eq!(it.size_hint(), (remaining, Some(remaining)));
            if it.next().is_none() {
                break;
            }
            remaining -= 1;
        }
    }

    #[test]
    fn tiles_cover_exactly() {
        let b = IBox::cube(10);
        for tile in [1, 2, 3, 4, 5, 7, 10, 16] {
            let tiles = b.tiles(tile);
            let total: usize = tiles.iter().map(|t| t.num_pts()).sum();
            assert_eq!(total, b.num_pts(), "tile={tile}");
            // Pairwise disjoint.
            for (i, a) in tiles.iter().enumerate() {
                assert!(b.contains_box(a));
                for bb in &tiles[i + 1..] {
                    assert!(!a.intersects(bb), "tile={tile}");
                }
            }
        }
    }

    #[test]
    fn tile_counts_match() {
        let b = IBox::cube(10);
        assert_eq!(b.tile_counts(4), IntVect::splat(3));
        assert_eq!(b.tiles(4).len(), 27);
        assert_eq!(b.tile_counts(5), IntVect::splat(2));
    }
}
