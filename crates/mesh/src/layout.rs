//! Disjoint box layouts: the coarse grain of parallelism.

use crate::domain::ProblemDomain;
use crate::ibox::IBox;
use crate::intvect::IntVect;
use crate::DIM;

/// A set of pairwise-disjoint boxes covering (part of) a domain.
///
/// In Chombo the `DisjointBoxLayout` is the unit of distribution: each MPI
/// rank owns a subset of boxes, and on-node parallelization "over boxes"
/// (the paper's `P >= Box`) distributes these boxes over threads. Here all
/// boxes are local; the thread-level distribution happens in
/// `pdesched-core`.
#[derive(Clone, Debug)]
pub struct DisjointBoxLayout {
    problem: ProblemDomain,
    boxes: Vec<IBox>,
    /// For uniform decompositions: number of boxes per direction and the
    /// uniform box size, enabling O(1) neighbor lookup during exchange.
    grid: Option<UniformGrid>,
}

#[derive(Clone, Copy, Debug)]
struct UniformGrid {
    counts: IntVect,
    box_size: i32,
}

impl DisjointBoxLayout {
    /// Decompose `problem`'s domain (which must be a cube multiple of
    /// `box_size` in every direction) into uniform `box_size`^3 boxes, in
    /// storage order.
    ///
    /// This mirrors the paper's setup: 50,331,648 cells divided into
    /// 12,288 boxes of 16^3, …, or 24 boxes of 128^3.
    pub fn uniform(problem: ProblemDomain, box_size: i32) -> Self {
        let domain = problem.domain_box();
        let size = domain.size();
        for d in 0..DIM {
            assert!(
                size[d] % box_size == 0,
                "domain extent {} not a multiple of box size {box_size}",
                size[d]
            );
        }
        let boxes = domain.tiles(box_size);
        let counts = domain.tile_counts(box_size);
        DisjointBoxLayout { problem, boxes, grid: Some(UniformGrid { counts, box_size }) }
    }

    /// Build from an explicit list of boxes; panics if any two overlap.
    pub fn from_boxes(problem: ProblemDomain, boxes: Vec<IBox>) -> Self {
        for (i, a) in boxes.iter().enumerate() {
            assert!(problem.domain_box().contains_box(a), "box {a:?} outside domain");
            for b in &boxes[i + 1..] {
                assert!(!a.intersects(b), "boxes overlap: {a:?} and {b:?}");
            }
        }
        DisjointBoxLayout { problem, boxes, grid: None }
    }

    /// The problem domain.
    #[inline]
    pub fn problem(&self) -> ProblemDomain {
        self.problem
    }

    /// Number of boxes.
    #[inline]
    pub fn num_boxes(&self) -> usize {
        self.boxes.len()
    }

    /// The boxes, in layout order.
    #[inline]
    pub fn boxes(&self) -> &[IBox] {
        &self.boxes
    }

    /// Box `i`.
    #[inline]
    pub fn get(&self, i: usize) -> IBox {
        self.boxes[i]
    }

    /// Total number of cells over all boxes.
    pub fn total_cells(&self) -> usize {
        self.boxes.iter().map(|b| b.num_pts()).sum()
    }

    /// Indices of boxes whose valid region might intersect `region` after
    /// applying periodic shift `shift` (i.e. candidates `j` such that
    /// `boxes[j]` intersects `region.shifted(shift)`).
    ///
    /// With a uniform grid this is an O(neighborhood) lookup; otherwise a
    /// linear scan.
    pub fn candidates(&self, region: IBox, shift: IntVect) -> Vec<usize> {
        let target = region.shifted(shift);
        match self.grid {
            Some(g) => {
                let dlo = self.problem.domain_box().lo();
                let mut out = Vec::new();
                let mut lo_idx = [0i32; DIM];
                let mut hi_idx = [0i32; DIM];
                for d in 0..DIM {
                    lo_idx[d] = ((target.lo()[d] - dlo[d]).div_euclid(g.box_size)).max(0);
                    hi_idx[d] =
                        ((target.hi()[d] - dlo[d]).div_euclid(g.box_size)).min(g.counts[d] - 1);
                    if lo_idx[d] > hi_idx[d] {
                        return out;
                    }
                }
                for bz in lo_idx[2]..=hi_idx[2] {
                    for by in lo_idx[1]..=hi_idx[1] {
                        for bx in lo_idx[0]..=hi_idx[0] {
                            out.push(((bz * g.counts[1] + by) * g.counts[0] + bx) as usize);
                        }
                    }
                }
                out
            }
            None => (0..self.boxes.len()).filter(|&j| self.boxes[j].intersects(&target)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: i32) -> ProblemDomain {
        ProblemDomain::periodic(IBox::cube(n))
    }

    #[test]
    fn uniform_decomposition_counts() {
        let l = DisjointBoxLayout::uniform(dom(32), 16);
        assert_eq!(l.num_boxes(), 8);
        assert_eq!(l.total_cells(), 32 * 32 * 32);
        for b in l.boxes() {
            assert_eq!(b.num_pts(), 16 * 16 * 16);
        }
    }

    #[test]
    fn paper_box_counts() {
        // Paper Sec. III-C: 50,331,648 cells = 12,288 boxes of 16^3 =
        // 24 boxes of 128^3. The domain is 512 x 384 x 256.
        let domain = IBox::new(IntVect::ZERO, IntVect::new(511, 383, 255));
        let problem = ProblemDomain::periodic(domain);
        assert_eq!(domain.num_pts(), 50_331_648);
        assert_eq!(DisjointBoxLayout::uniform(problem, 16).num_boxes(), 12_288);
        assert_eq!(DisjointBoxLayout::uniform(problem, 32).num_boxes(), 1_536);
        assert_eq!(DisjointBoxLayout::uniform(problem, 64).num_boxes(), 192);
        assert_eq!(DisjointBoxLayout::uniform(problem, 128).num_boxes(), 24);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn uniform_requires_divisibility() {
        let _ = DisjointBoxLayout::uniform(dom(30), 16);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn from_boxes_rejects_overlap() {
        let p = dom(16);
        let a = IBox::cube(8);
        let b = IBox::new(IntVect::splat(4), IntVect::splat(12));
        let _ = DisjointBoxLayout::from_boxes(p, vec![a, b]);
    }

    #[test]
    fn candidates_match_linear_scan() {
        let l = DisjointBoxLayout::uniform(dom(32), 8);
        let probes = [
            IBox::new(IntVect::splat(-2), IntVect::splat(9)),
            IBox::new(IntVect::new(6, 14, 30), IntVect::new(10, 18, 34)),
            IBox::new(IntVect::splat(31), IntVect::splat(33)),
        ];
        for probe in probes {
            for shift in l.problem().periodic_shifts() {
                let mut fast = l.candidates(probe, shift);
                // The grid lookup may include boxes that merely touch the
                // covering tile range; filter to true intersections for
                // comparison.
                fast.retain(|&j| l.get(j).intersects(&probe.shifted(shift)));
                let slow: Vec<usize> = (0..l.num_boxes())
                    .filter(|&j| l.get(j).intersects(&probe.shifted(shift)))
                    .collect();
                assert_eq!(fast, slow, "probe {probe:?} shift {shift:?}");
            }
        }
    }
}
