//! Whole-box operators: the modular per-direction passes of Figure 6.
//!
//! These are the building blocks of the *series of loops* schedules and
//! of the intra-tile "Basic-Sched" used by overlapped tiling. Inner loops
//! run over `x` (unit stride) with direct slice indexing.

use crate::point::{accumulate, face_interp, flux_mul};
use crate::{vel_comp, NCOMP};
use pdesched_mesh::{FArrayBox, IBox, IntVect};

/// `EvalFlux1` over a face box: for every face `f` in `faces` (a
/// `Centering::Face(d)` box) and every component in `comps`, write the
/// 4th-order interpolant of `phi` into `out`.
///
/// `phi` must cover `faces` grown by 2 cells in direction `d` on the low
/// side and 1 on the high side (i.e. the usual 2-ghost box).
pub fn eval_flux1(
    phi: &FArrayBox,
    d: usize,
    faces: IBox,
    out: &mut FArrayBox,
    comps: std::ops::Range<usize>,
) {
    let lo = faces.lo();
    let hi = faces.hi();
    if faces.is_empty() {
        return;
    }
    let stride = match d {
        0 => 1,
        1 => phi.y_stride(),
        _ => phi.z_stride(),
    };
    let nfx = (hi[0] - lo[0] + 1) as usize;
    for c in comps {
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let mut src = phi.index(IntVect::new(lo[0], y, z), c);
                let dst = out.index(IntVect::new(lo[0], y, z), c);
                let pd = phi.data();
                // Face f reads cells f-2, f-1, f, f+1 along d. Borrow the
                // destination row once so the inner loop is a single
                // bounds-checked slice walk.
                for o in out.data_mut()[dst..dst + nfx].iter_mut() {
                    *o = face_interp(
                        pd[src - 2 * stride],
                        pd[src - stride],
                        pd[src],
                        pd[src + stride],
                    );
                    src += 1;
                }
            }
        }
    }
}

/// `EvalFlux2` over a face box with an explicit velocity array
/// (single-component, same face box): `flux[c] *= vel` for `c` in
/// `comps`.
pub fn eval_flux2(
    flux: &mut FArrayBox,
    vel: &FArrayBox,
    faces: IBox,
    comps: std::ops::Range<usize>,
) {
    if faces.is_empty() {
        return;
    }
    let lo = faces.lo();
    let hi = faces.hi();
    let nfx = (hi[0] - lo[0] + 1) as usize;
    for c in comps {
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let fi = flux.index(IntVect::new(lo[0], y, z), c);
                let vi = vel.index(IntVect::new(lo[0], y, z), 0);
                let vd = &vel.data()[vi..vi + nfx];
                for (f, &v) in flux.data_mut()[fi..fi + nfx].iter_mut().zip(vd) {
                    *f = flux_mul(*f, v);
                }
            }
        }
    }
}

/// `EvalFlux2` in place, reading the velocity from the flux array's own
/// component `d+1` — the paper's "component loop on the outside" variant
/// that avoids the velocity temporary by *reordering* the component loop
/// so the velocity component is multiplied last.
pub fn eval_flux2_inplace_reordered(flux: &mut FArrayBox, d: usize, faces: IBox) {
    if faces.is_empty() {
        return;
    }
    let vc = vel_comp(d);
    let lo = faces.lo();
    let hi = faces.hi();
    let nfx = (hi[0] - lo[0] + 1) as usize;
    // All components except vc first, then vc itself (vel^2).
    let order = (0..NCOMP).filter(|&c| c != vc).chain(std::iter::once(vc));
    for c in order {
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let fi = flux.index(IntVect::new(lo[0], y, z), c);
                let vi = flux.index(IntVect::new(lo[0], y, z), vc);
                // fi and vi rows may alias (c == vc last): plain indices
                // on one borrow keep the read-then-write order.
                let fd = flux.data_mut();
                for i in 0..nfx {
                    fd[fi + i] = flux_mul(fd[fi + i], fd[vi + i]);
                }
            }
        }
    }
}

/// Copy the velocity component `d+1` of `flux` over `faces` into the
/// single-component array `vel` (the paper's `velocity =
/// flux[component dir+1]`, which costs the `(N+1)^3` velocity temporary
/// of Table I).
pub fn extract_velocity(flux: &FArrayBox, d: usize, faces: IBox, vel: &mut FArrayBox) {
    if faces.is_empty() {
        return;
    }
    let vc = vel_comp(d);
    let lo = faces.lo();
    let hi = faces.hi();
    let nfx = (hi[0] - lo[0] + 1) as usize;
    for z in lo[2]..=hi[2] {
        for y in lo[1]..=hi[1] {
            let si = flux.index(IntVect::new(lo[0], y, z), vc);
            let di = vel.index(IntVect::new(lo[0], y, z), 0);
            vel.data_mut()[di..di + nfx].copy_from_slice(&flux.data()[si..si + nfx]);
        }
    }
}

/// Divergence accumulation over a cell box: for each cell `i` and
/// component `c` in `comps`,
/// `phi1[i, c] += flux[i + e^d, c] - flux[i, c]`.
pub fn accumulate_dir(
    phi1: &mut FArrayBox,
    flux: &FArrayBox,
    d: usize,
    cells: IBox,
    comps: std::ops::Range<usize>,
) {
    if cells.is_empty() {
        return;
    }
    let lo = cells.lo();
    let hi = cells.hi();
    let nfx = (hi[0] - lo[0] + 1) as usize;
    let stride = match d {
        0 => 1,
        1 => flux.y_stride(),
        _ => flux.z_stride(),
    };
    for c in comps {
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let pi = phi1.index(IntVect::new(lo[0], y, z), c);
                let fi = flux.index(IntVect::new(lo[0], y, z), c);
                let fd = flux.data();
                for (i, p) in phi1.data_mut()[pi..pi + nfx].iter_mut().enumerate() {
                    *p = accumulate(*p, fd[fi + i], fd[fi + i + stride]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdesched_mesh::{FArrayBox, IBox, IntVect};

    fn phi_with_ghosts(n: i32, seed: u64) -> FArrayBox {
        let mut f = FArrayBox::new(IBox::cube(n).grown(crate::GHOST), NCOMP);
        f.fill_synthetic(seed);
        f
    }

    #[test]
    fn flux1_matches_pointwise() {
        let n = 6;
        let phi = phi_with_ghosts(n, 11);
        for d in 0..3 {
            let faces = IBox::cube(n).surrounding_faces(d);
            let mut out = FArrayBox::new(faces, NCOMP);
            eval_flux1(&phi, d, faces, &mut out, 0..NCOMP);
            let e = IntVect::basis(d);
            for c in 0..NCOMP {
                for f in faces.iter() {
                    let expect = face_interp(
                        phi.at(f - e * 2, c),
                        phi.at(f - e, c),
                        phi.at(f, c),
                        phi.at(f + e, c),
                    );
                    assert_eq!(out.at(f, c).to_bits(), expect.to_bits(), "d={d} f={f:?} c={c}");
                }
            }
        }
    }

    #[test]
    fn flux2_with_velocity_matches_inplace_reordered() {
        let n = 5;
        let phi = phi_with_ghosts(n, 3);
        for d in 0..3 {
            let faces = IBox::cube(n).surrounding_faces(d);
            let mut a = FArrayBox::new(faces, NCOMP);
            eval_flux1(&phi, d, faces, &mut a, 0..NCOMP);
            let mut b = a.clone();

            // Path 1: extract velocity then multiply all comps.
            let mut vel = FArrayBox::new(faces, 1);
            extract_velocity(&a, d, faces, &mut vel);
            eval_flux2(&mut a, &vel, faces, 0..NCOMP);

            // Path 2: in-place with reordered component loop.
            eval_flux2_inplace_reordered(&mut b, d, faces);

            assert!(a.bit_eq(&b, faces.as_cell()), "d={d}");
        }
    }

    #[test]
    fn accumulate_dir_matches_pointwise() {
        let n = 4;
        let cells = IBox::cube(n);
        for d in 0..3 {
            let faces = cells.surrounding_faces(d);
            let mut flux = FArrayBox::new(faces, NCOMP);
            flux.fill_synthetic(5);
            let mut phi1 = FArrayBox::new(cells, NCOMP);
            phi1.fill_synthetic(6);
            let check = phi1.clone();
            accumulate_dir(&mut phi1, &flux, d, cells, 0..NCOMP);
            let e = IntVect::basis(d);
            for c in 0..NCOMP {
                for iv in cells.iter() {
                    let expect = accumulate(check.at(iv, c), flux.at(iv, c), flux.at(iv + e, c));
                    assert_eq!(phi1.at(iv, c).to_bits(), expect.to_bits());
                }
            }
        }
    }

    #[test]
    fn accumulate_conserves_total() {
        // Over the full box the divergence telescopes: the total change
        // in phi1 equals the sum over the hi-boundary fluxes minus lo.
        let n = 4;
        let cells = IBox::cube(n);
        let d = 1;
        let faces = cells.surrounding_faces(d);
        let mut flux = FArrayBox::new(faces, NCOMP);
        flux.fill_synthetic(9);
        let mut phi1 = FArrayBox::new(cells, NCOMP);
        accumulate_dir(&mut phi1, &flux, d, cells, 0..NCOMP);
        for c in 0..NCOMP {
            let total = phi1.sum_comp(c, cells);
            let mut boundary = 0.0;
            for f in faces.iter() {
                if f[d] == faces.hi()[d] {
                    boundary += flux.at(f, c);
                } else if f[d] == faces.lo()[d] {
                    boundary -= flux.at(f, c);
                }
            }
            assert!((total - boundary).abs() < 1e-12 * boundary.abs().max(1.0));
        }
    }

    #[test]
    fn subrange_of_components() {
        let n = 4;
        let phi = phi_with_ghosts(n, 2);
        let faces = IBox::cube(n).surrounding_faces(0);
        let mut out = FArrayBox::new(faces, NCOMP);
        eval_flux1(&phi, 0, faces, &mut out, 2..3);
        // Only component 2 written.
        for c in 0..NCOMP {
            let any_nonzero = faces.iter().any(|f| out.at(f, c) != 0.0);
            assert_eq!(any_nonzero, c == 2, "c={c}");
        }
    }
}
