//! A second stencil: the 4th-order cell-centered gradient.
//!
//! The paper notes the `[x, y, z, c]` layout "works well for gradient
//! calculations" (Section III-C). This module provides that operation —
//! a single-centering stencil with no face temporaries — both as a
//! modular per-direction pass and as a fused single sweep, demonstrating
//! that the study's schedule ideas transfer to other kernels in the
//! framework.
//!
//! `grad_d φ(i) = (φ(i−2e) − 8 φ(i−e) + 8 φ(i+e) − φ(i+2e)) / 12Δx`
//! (with `Δx = 1` here), exact for quartics up to the truncation term.

use crate::{GHOST, NCOMP};
use pdesched_mesh::{FArrayBox, IBox, IntVect};

/// The 4th-order central difference (Δx = 1).
#[inline(always)]
pub fn grad_point(m2: f64, m1: f64, p1: f64, p2: f64) -> f64 {
    const C8_12: f64 = 8.0 / 12.0;
    const C1_12: f64 = 1.0 / 12.0;
    C8_12 * (p1 - m1) - C1_12 * (p2 - m2)
}

/// Compute one direction of the gradient for all components over
/// `cells` into component block `d` of `out` (`out` has `3 * NCOMP`
/// components: gradient direction outermost).
pub fn gradient_dir(phi: &FArrayBox, d: usize, cells: IBox, out: &mut FArrayBox) {
    debug_assert!(phi.region().contains_box(&cells.grown(GHOST)));
    debug_assert_eq!(out.ncomp(), 3 * NCOMP);
    let stride = match d {
        0 => 1,
        1 => phi.y_stride(),
        _ => phi.z_stride(),
    };
    let (lo, hi) = (cells.lo(), cells.hi());
    let nx = (hi[0] - lo[0] + 1) as usize;
    for c in 0..NCOMP {
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let mut src = phi.index(IntVect::new(lo[0], y, z), c);
                let dst = out.index(IntVect::new(lo[0], y, z), d * NCOMP + c);
                let pd = phi.data();
                for o in out.data_mut()[dst..dst + nx].iter_mut() {
                    *o = grad_point(
                        pd[src - 2 * stride],
                        pd[src - stride],
                        pd[src + stride],
                        pd[src + 2 * stride],
                    );
                    src += 1;
                }
            }
        }
    }
}

/// The modular schedule: three separate direction passes (reads `phi`
/// three times).
pub fn gradient_series(phi: &FArrayBox, cells: IBox, out: &mut FArrayBox) {
    for d in 0..3 {
        gradient_dir(phi, d, cells, out);
    }
}

/// The fused schedule: one sweep computing all three directions per
/// cell (reads `phi` once, with stencil reuse in registers along x).
pub fn gradient_fused(phi: &FArrayBox, cells: IBox, out: &mut FArrayBox) {
    debug_assert!(phi.region().contains_box(&cells.grown(GHOST)));
    debug_assert_eq!(out.ncomp(), 3 * NCOMP);
    let sy = phi.y_stride();
    let sz = phi.z_stride();
    let (lo, hi) = (cells.lo(), cells.hi());
    let nx = (hi[0] - lo[0] + 1) as usize;
    for c in 0..NCOMP {
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let mut src = phi.index(IntVect::new(lo[0], y, z), c);
                let mut dx = out.index(IntVect::new(lo[0], y, z), c);
                let mut dy = out.index(IntVect::new(lo[0], y, z), NCOMP + c);
                let mut dz = out.index(IntVect::new(lo[0], y, z), 2 * NCOMP + c);
                let pd = phi.data();
                // Three interleaved destination rows in one array: borrow
                // it once for the whole row instead of per store.
                let od = out.data_mut();
                for _ in 0..nx {
                    let gx = grad_point(pd[src - 2], pd[src - 1], pd[src + 1], pd[src + 2]);
                    let gy =
                        grad_point(pd[src - 2 * sy], pd[src - sy], pd[src + sy], pd[src + 2 * sy]);
                    let gz =
                        grad_point(pd[src - 2 * sz], pd[src - sz], pd[src + sz], pd[src + 2 * sz]);
                    od[dx] = gx;
                    od[dy] = gy;
                    od[dz] = gz;
                    src += 1;
                    dx += 1;
                    dy += 1;
                    dz += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi_fn(f: impl Fn(IntVect) -> f64, n: i32) -> FArrayBox {
        let mut phi = FArrayBox::new(IBox::cube(n).grown(GHOST), NCOMP);
        for c in 0..NCOMP {
            for iv in phi.region().iter() {
                let v = f(iv) + c as f64; // shift per component
                phi.set(iv, c, v);
            }
        }
        phi
    }

    #[test]
    fn exact_for_linear_fields() {
        let n = 6;
        let cells = IBox::cube(n);
        let phi = phi_fn(|iv| 2.0 * iv[0] as f64 - iv[1] as f64 + 0.5 * iv[2] as f64, n);
        let mut out = FArrayBox::new(cells, 3 * NCOMP);
        gradient_series(&phi, cells, &mut out);
        for c in 0..NCOMP {
            for iv in cells.iter() {
                assert!((out.at(iv, c) - 2.0).abs() < 1e-12);
                assert!((out.at(iv, NCOMP + c) + 1.0).abs() < 1e-12);
                assert!((out.at(iv, 2 * NCOMP + c) - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exact_for_cubic_fields() {
        // 4th-order central differences are exact through quartics for
        // the point gradient of polynomials up to degree 4... degree 3
        // is safely exact.
        let n = 6;
        let cells = IBox::cube(n);
        let phi = phi_fn(|iv| (iv[0] as f64).powi(3), n);
        let mut out = FArrayBox::new(cells, 3 * NCOMP);
        gradient_fused(&phi, cells, &mut out);
        for iv in cells.iter() {
            let exact = 3.0 * (iv[0] as f64).powi(2);
            assert!(
                (out.at(iv, 0) - exact).abs() < 1e-10 * exact.abs().max(1.0),
                "{iv:?}: {} vs {exact}",
                out.at(iv, 0)
            );
            assert!(out.at(iv, NCOMP).abs() < 1e-10); // d/dy = 0
        }
    }

    #[test]
    fn fused_matches_series_bitwise() {
        let n = 7;
        let cells = IBox::cube(n);
        let mut phi = FArrayBox::new(cells.grown(GHOST), NCOMP);
        phi.fill_synthetic(77);
        let mut a = FArrayBox::new(cells, 3 * NCOMP);
        let mut b = FArrayBox::new(cells, 3 * NCOMP);
        gradient_series(&phi, cells, &mut a);
        gradient_fused(&phi, cells, &mut b);
        assert!(a.bit_eq(&b, cells));
    }

    #[test]
    fn fourth_order_convergence() {
        // Smooth field: error shrinks ~16x per halving of h.
        let err = |h: f64| {
            let g = |x: f64| (x).sin();
            let m2 = g(-2.0 * h);
            let m1 = g(-h);
            let p1 = g(h);
            let p2 = g(2.0 * h);
            (grad_point(m2, m1, p1, p2) / h - 1.0).abs() // g'(0) = 1
        };
        let rate = (err(0.1) / err(0.05)).log2();
        assert!(rate > 3.7 && rate < 4.3, "rate {rate}");
    }
}
