//! Ground-truth serial implementation of the exemplar (Figure 6).
//!
//! Every schedule variant in `pdesched-core` must reproduce this
//! implementation **bitwise**: all variants perform the identical
//! floating-point operations per (cell, component), in direction order
//! `x, y, z` per cell, so their results are exactly equal — the
//! foundation of the equivalence test suite.

use crate::boxops::{accumulate_dir, eval_flux1, eval_flux2, extract_velocity};
use crate::NCOMP;
use pdesched_mesh::{FArrayBox, IBox, LevelData};

/// Apply one exemplar update to a single box: `phi1 += div(F(phi0))`
/// over `cells`, with `phi0` providing 2 ghost layers around `cells`.
///
/// This is the unoptimized series-of-loops schedule with full-box flux
/// and velocity temporaries, exactly as in Figure 6 (component loop
/// outside, directions outermost).
pub fn update_box(phi0: &FArrayBox, phi1: &mut FArrayBox, cells: IBox) {
    debug_assert!(phi0.region().contains_box(&cells.grown(crate::GHOST)));
    debug_assert_eq!(phi0.ncomp(), NCOMP);
    debug_assert_eq!(phi1.ncomp(), NCOMP);
    for d in 0..pdesched_mesh::DIM {
        let faces = cells.surrounding_faces(d);
        // Temporary flux over all faces, all components (Table I:
        // C(N+1)^3), plus the velocity copy ((N+1)^3).
        let mut flux = FArrayBox::new(faces, NCOMP);
        eval_flux1(phi0, d, faces, &mut flux, 0..NCOMP);
        let mut vel = FArrayBox::new(faces, 1);
        extract_velocity(&flux, d, faces, &mut vel);
        eval_flux2(&mut flux, &vel, faces, 0..NCOMP);
        accumulate_dir(phi1, &flux, d, cells, 0..NCOMP);
    }
}

/// Apply the exemplar update serially over every box of a level.
/// `phi0`'s ghosts must already be filled (call
/// [`LevelData::exchange`] first).
pub fn update_level(phi0: &LevelData, phi1: &mut LevelData) {
    assert!(phi0.ghost() >= crate::GHOST);
    for i in 0..phi0.num_boxes() {
        let cells = phi0.valid_box(i);
        update_box(phi0.fab(i), phi1.fab_mut(i), cells);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{accumulate, face_interp, flux_mul};
    use crate::vel_comp;
    use pdesched_mesh::{DisjointBoxLayout, IntVect, ProblemDomain};

    /// Fully independent re-implementation with pointwise loops: computes
    /// the expected phi1 update with no shared code path beyond the point
    /// kernels.
    fn naive_update(phi0: &FArrayBox, phi1: &mut FArrayBox, cells: IBox) {
        for d in 0..3 {
            let e = IntVect::basis(d);
            let faces = cells.surrounding_faces(d);
            let mut interp = FArrayBox::new(faces, NCOMP);
            for c in 0..NCOMP {
                for f in faces.iter() {
                    interp.set(
                        f,
                        c,
                        face_interp(
                            phi0.at(f - e * 2, c),
                            phi0.at(f - e, c),
                            phi0.at(f, c),
                            phi0.at(f + e, c),
                        ),
                    );
                }
            }
            let mut flux = FArrayBox::new(faces, NCOMP);
            for c in 0..NCOMP {
                for f in faces.iter() {
                    flux.set(f, c, flux_mul(interp.at(f, c), interp.at(f, vel_comp(d))));
                }
            }
            for c in 0..NCOMP {
                for iv in cells.iter() {
                    let v = accumulate(phi1.at(iv, c), flux.at(iv, c), flux.at(iv + e, c));
                    phi1.set(iv, c, v);
                }
            }
        }
    }

    #[test]
    fn update_box_matches_naive() {
        let n = 6;
        let cells = IBox::cube(n);
        let mut phi0 = FArrayBox::new(cells.grown(crate::GHOST), NCOMP);
        phi0.fill_synthetic(17);
        let mut a = FArrayBox::new(cells, NCOMP);
        a.fill_synthetic(18);
        let mut b = a.clone();
        update_box(&phi0, &mut a, cells);
        naive_update(&phi0, &mut b, cells);
        assert!(a.bit_eq(&b, cells));
    }

    #[test]
    fn update_is_deterministic() {
        let n = 5;
        let cells = IBox::cube(n);
        let mut phi0 = FArrayBox::new(cells.grown(2), NCOMP);
        phi0.fill_synthetic(3);
        let run = || {
            let mut p = FArrayBox::new(cells, NCOMP);
            update_box(&phi0, &mut p, cells);
            p
        };
        let a = run();
        let b = run();
        assert!(a.bit_eq(&b, cells));
    }

    #[test]
    fn level_update_conserves_on_periodic_domain() {
        // On a fully periodic domain the flux divergence telescopes to
        // zero: sum(phi1_after) == sum(phi1_before) exactly up to fp
        // roundoff.
        let domain = IBox::cube(16);
        let layout = DisjointBoxLayout::uniform(ProblemDomain::periodic(domain), 8);
        let mut phi0 = LevelData::new(layout.clone(), NCOMP, crate::GHOST);
        let mut phi1 = LevelData::new(layout, NCOMP, 0);
        phi0.fill_synthetic(7);
        phi0.exchange();
        phi1.set_val(0.0);
        update_level(&phi0, &mut phi1);
        for c in 0..NCOMP {
            let total = phi1.sum_comp(c);
            assert!(total.abs() < 1e-10, "component {c} drifted: {total}");
        }
    }

    #[test]
    fn level_update_matches_single_box() {
        // Decomposing the domain must not change the answer: compare an
        // 8^3 single-box update against a 2x2x2 decomposition of 4^3
        // boxes on the same periodic domain.
        let domain = IBox::cube(8);
        let problem = ProblemDomain::periodic(domain);

        let one = DisjointBoxLayout::uniform(problem, 8);
        let mut phi0a = LevelData::new(one.clone(), NCOMP, crate::GHOST);
        let mut phi1a = LevelData::new(one, NCOMP, 0);
        phi0a.fill_synthetic(5);
        phi0a.exchange();
        update_level(&phi0a, &mut phi1a);

        let many = DisjointBoxLayout::uniform(problem, 4);
        let mut phi0b = LevelData::new(many.clone(), NCOMP, crate::GHOST);
        let mut phi1b = LevelData::new(many, NCOMP, 0);
        phi0b.fill_synthetic(5);
        phi0b.exchange();
        update_level(&phi0b, &mut phi1b);

        for i in 0..phi1b.num_boxes() {
            let vb = phi1b.valid_box(i);
            for c in 0..NCOMP {
                for iv in vb.iter() {
                    assert_eq!(
                        phi1b.fab(i).at(iv, c).to_bits(),
                        phi1a.fab(0).at(iv, c).to_bits(),
                        "iv {iv:?} c {c}"
                    );
                }
            }
        }
    }
}
