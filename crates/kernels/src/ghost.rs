//! Ghost-cell overhead analytics (paper Figure 1).

/// Ratio of total cells (physical + ghost) to physical cells for a
/// `D`-dimensional box of `n` cells per side with `g` ghost layers:
/// `(1 + 2g/n)^D` — the quantity plotted in Figure 1.
///
/// ```
/// use pdesched_kernels::ghost::ratio;
/// // A 16^3 box with 2 ghost layers nearly doubles its storage:
/// assert!((ratio(16, 3, 2) - 1.953125).abs() < 1e-12);
/// // Five ghosts need a box of 64 to get under 2x (paper Sec. I):
/// assert!(ratio(32, 3, 5) >= 2.0 && ratio(64, 3, 5) < 2.0);
/// ```
pub fn ratio(n: u32, dim: u32, ghosts: u32) -> f64 {
    assert!(n > 0);
    (1.0 + 2.0 * ghosts as f64 / n as f64).powi(dim as i32)
}

/// Total cells including ghosts for a `dim`-dimensional hypercube box.
pub fn total_cells(n: u32, dim: u32, ghosts: u32) -> u64 {
    (n as u64 + 2 * ghosts as u64).pow(dim)
}

/// Physical cells for a `dim`-dimensional hypercube box.
pub fn physical_cells(n: u32, dim: u32) -> u64 {
    (n as u64).pow(dim)
}

/// One series of Figure 1: the ratio at box sizes `ns` for fixed
/// dimension and ghost count.
pub fn figure1_series(ns: &[u32], dim: u32, ghosts: u32) -> Vec<(u32, f64)> {
    ns.iter().map(|&n| (n, ratio(n, dim, ghosts))).collect()
}

/// Smallest box size (power of two up to `limit`) whose ghost ratio is
/// below `threshold`; `None` when even `limit` is not enough. The paper
/// observes that with 5 ghosts a box of 64 is needed to get under 2.0.
pub fn min_box_for_ratio(dim: u32, ghosts: u32, threshold: f64, limit: u32) -> Option<u32> {
    let mut n = 1;
    while n <= limit {
        if ratio(n, dim, ghosts) < threshold {
            return Some(n);
        }
        n *= 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_matches_exact_counts() {
        for (n, d, g) in [(16u32, 3u32, 2u32), (32, 3, 5), (64, 4, 2), (128, 4, 5)] {
            let exact = total_cells(n, d, g) as f64 / physical_cells(n, d) as f64;
            assert!((ratio(n, d, g) - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn ratio_decreases_with_box_size() {
        let series = figure1_series(&[16, 32, 64, 128], 3, 5);
        for w in series.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
    }

    #[test]
    fn paper_observation_five_ghosts_need_box_64() {
        // "Given five ghosts, a box size of 64 is necessary to get the
        // ratio below 2.0" (3-D).
        assert!(ratio(32, 3, 5) >= 2.0);
        assert!(ratio(64, 3, 5) < 2.0);
        assert_eq!(min_box_for_ratio(3, 5, 2.0, 128), Some(64));
    }

    #[test]
    fn figure1_anchor_values() {
        // 3D, 2 ghosts, N=16: (1 + 4/16)^3 = 1.953125
        assert!((ratio(16, 3, 2) - 1.953125).abs() < 1e-12);
        // 4D, 5 ghosts, N=16: (1 + 10/16)^4 ≈ 6.97
        assert!((ratio(16, 4, 5) - (1.625f64).powi(4)).abs() < 1e-12);
        // Large boxes approach 1.
        assert!(ratio(1024, 3, 2) < 1.02);
    }

    #[test]
    fn higher_dim_higher_ratio() {
        for n in [16, 32, 64, 128] {
            assert!(ratio(n, 4, 2) > ratio(n, 3, 2));
            assert!(ratio(n, 6, 2) > ratio(n, 4, 2));
        }
    }
}
