//! Operation-count analytics for the exemplar.
//!
//! The machine model converts these counts plus measured DRAM traffic
//! into predicted execution times. Counts are exact for the
//! recomputation-free schedules; overlapped tiling multiplies face work
//! by the tile-overlap redundancy factor computed here.

use crate::point::{FLOPS_ACCUM, FLOPS_FLUX, FLOPS_INTERP};
use crate::NCOMP;
use pdesched_mesh::{IBox, DIM};

/// Exact floating-point operation counts for one exemplar update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Face-interpolation invocations (5 flops each).
    pub interp: u64,
    /// Flux multiplications (1 flop each).
    pub flux: u64,
    /// Accumulation updates (2 flops each).
    pub accum: u64,
}

impl OpCount {
    /// Total floating-point operations.
    pub fn flops(&self) -> u64 {
        self.interp * FLOPS_INTERP + self.flux * FLOPS_FLUX + self.accum * FLOPS_ACCUM
    }

    /// Component-wise sum.
    pub fn add(self, o: OpCount) -> OpCount {
        OpCount {
            interp: self.interp + o.interp,
            flux: self.flux + o.flux,
            accum: self.accum + o.accum,
        }
    }

    /// Scale all counts.
    pub fn scale(self, k: u64) -> OpCount {
        OpCount { interp: self.interp * k, flux: self.flux * k, accum: self.accum * k }
    }
}

/// Operation counts for one recomputation-free exemplar update over
/// `cells` (any schedule without overlapped tiles: the work is identical,
/// only the order changes).
pub fn exemplar_ops(cells: IBox) -> OpCount {
    let mut oc = OpCount::default();
    for d in 0..DIM {
        let nfaces = cells.surrounding_faces(d).num_pts() as u64;
        oc.interp += nfaces * NCOMP as u64;
        oc.flux += nfaces * NCOMP as u64;
    }
    oc.accum = cells.num_pts() as u64 * NCOMP as u64 * DIM as u64;
    oc
}

/// Operation counts for an overlapped-tile update of `cells` with tile
/// size `tile`: every tile computes its own `(T+1)` faces per direction,
/// so interior tile boundaries do face work twice. Accumulation is never
/// redundant (each cell belongs to exactly one tile).
pub fn exemplar_ops_overlapped(cells: IBox, tile: i32) -> OpCount {
    let mut oc = OpCount::default();
    for t in cells.tiles(tile) {
        for d in 0..DIM {
            let nfaces = t.surrounding_faces(d).num_pts() as u64;
            oc.interp += nfaces * NCOMP as u64;
            oc.flux += nfaces * NCOMP as u64;
        }
        oc.accum += t.num_pts() as u64 * NCOMP as u64 * DIM as u64;
    }
    oc
}

/// Redundantly recomputed faces of one overlapped tile `t` of a tiling
/// of `cells`: the low-side boundary faces of `t` interior to `cells`
/// (the neighboring tile computes the same faces as its own high-side
/// surface). Summed over a whole tiling this equals the extra face count
/// of [`exemplar_ops_overlapped`] over [`exemplar_ops`] — the plan IR
/// attributes it per tile span so schedules can report recompute regions.
pub fn overlapped_tile_recompute(cells: IBox, t: IBox) -> usize {
    let mut faces = 0usize;
    for d in 0..DIM {
        if t.lo()[d] > cells.lo()[d] {
            let mut area = 1usize;
            for e in 0..DIM {
                if e != d {
                    area *= t.extent(e) as usize;
                }
            }
            faces += area;
        }
    }
    faces
}

/// The redundancy factor of overlapped tiling relative to the
/// recomputation-free schedules (ratio of total flops). For cube tiles of
/// size `T` inside a large box this tends to `(6T + 7T + 2) / (13T + 2)`…
/// in practice: compare directly.
pub fn overlap_redundancy(cells: IBox, tile: i32) -> f64 {
    exemplar_ops_overlapped(cells, tile).flops() as f64 / exemplar_ops(cells).flops() as f64
}

/// Minimum DRAM traffic in bytes for one exemplar update over a box with
/// `n` cells per side: the *compulsory* traffic of reading `phi0` (with
/// ghosts) and reading+writing `phi1`, assuming all temporaries stay in
/// cache. Every schedule is bounded below by this.
pub fn compulsory_bytes(n: i32, ghost: i32) -> u64 {
    let w = 8u64; // f64
    let total = ((n + 2 * ghost) as u64).pow(3) * NCOMP as u64;
    let valid = (n as u64).pow(3) * NCOMP as u64;
    // read phi0 (incl. ghosts) + read phi1 + write phi1
    total * w + 2 * valid * w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_for_cube() {
        let n = 16i64;
        let oc = exemplar_ops(IBox::cube(n as i32));
        let nfaces = 3 * (n + 1) * n * n;
        assert_eq!(oc.interp, (nfaces * NCOMP as i64) as u64);
        assert_eq!(oc.flux, oc.interp);
        assert_eq!(oc.accum, (n * n * n * NCOMP as i64 * 3) as u64);
        assert_eq!(oc.flops(), oc.interp * 5 + oc.flux + oc.accum * 2);
    }

    #[test]
    fn overlapped_equals_exact_when_tile_covers_box() {
        let b = IBox::cube(8);
        assert_eq!(exemplar_ops_overlapped(b, 8), exemplar_ops(b));
        assert_eq!(overlap_redundancy(b, 8), 1.0);
    }

    #[test]
    fn overlap_redundancy_grows_as_tiles_shrink() {
        let b = IBox::cube(32);
        let r16 = overlap_redundancy(b, 16);
        let r8 = overlap_redundancy(b, 8);
        let r4 = overlap_redundancy(b, 4);
        assert!(r16 > 1.0);
        assert!(r8 > r16);
        assert!(r4 > r8);
        // Sanity: 4^3 tiles of a face-heavy kernel stay under 2x.
        assert!(r4 < 1.6, "r4 = {r4}");
    }

    #[test]
    fn overlapped_tile_face_count_by_hand() {
        // 8^3 box, tile 4: 8 tiles, each with 3 * 5*4*4 faces.
        let oc = exemplar_ops_overlapped(IBox::cube(8), 4);
        assert_eq!(oc.interp, 8 * 3 * (5 * 4 * 4) * NCOMP as u64);
        assert_eq!(oc.accum, 8u64.pow(3) * NCOMP as u64 * 3);
    }

    #[test]
    fn per_tile_recompute_sums_to_overlap_redundancy() {
        for (n, t) in [(8, 4), (7, 4), (10, 3), (6, 6)] {
            let b = IBox::cube(n);
            let total: usize = b.tiles(t).iter().map(|tb| overlapped_tile_recompute(b, *tb)).sum();
            let extra =
                (exemplar_ops_overlapped(b, t).interp - exemplar_ops(b).interp) / NCOMP as u64;
            assert_eq!(total as u64, extra, "n={n} t={t}");
        }
    }

    #[test]
    fn compulsory_traffic_paper_sizes() {
        // N=16, ghost 2: phi0 20^3*5 doubles + 2*16^3*5 doubles.
        let b = compulsory_bytes(16, 2);
        assert_eq!(b, (20u64.pow(3) * 5 + 2 * 16u64.pow(3) * 5) * 8);
        // A 128 box moves ~512x more than a 16 box (same cell count
        // scales cubically).
        assert!(compulsory_bytes(128, 2) > 400 * b);
    }
}
