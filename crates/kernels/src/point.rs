//! Point kernels: the scalar arithmetic every schedule variant shares.
//!
//! Keeping the arithmetic in these three `#[inline]` functions guarantees
//! that all ~40 schedule variants perform *identical* floating-point
//! operations in *identical* order per (cell, component), which is what
//! makes the bitwise-equivalence test suite possible.

/// 4th-order face interpolation (Eq. 6).
///
/// For the face between cells `f-1` and `f` in direction `d`:
/// `face_interp(phi[f-2], phi[f-1], phi[f], phi[f+1])`.
///
/// 5 floating-point operations.
#[inline(always)]
pub fn face_interp(m2: f64, m1: f64, p0: f64, p1: f64) -> f64 {
    const C7_12: f64 = 7.0 / 12.0;
    const C1_12: f64 = 1.0 / 12.0;
    C7_12 * (m1 + p0) - C1_12 * (m2 + p1)
}

/// `EvalFlux2` (Eq. 7): flux = face velocity × interpolated face value.
///
/// 1 floating-point operation.
#[inline(always)]
pub fn flux_mul(face_phi: f64, velocity: f64) -> f64 {
    face_phi * velocity
}

/// Divergence accumulation (Fig. 6 lines 18–19):
/// `phi1 += flux_hi - flux_lo`.
///
/// 2 floating-point operations.
#[inline(always)]
pub fn accumulate(phi1: f64, flux_lo: f64, flux_hi: f64) -> f64 {
    phi1 + (flux_hi - flux_lo)
}

/// Floating-point operations in [`face_interp`].
pub const FLOPS_INTERP: u64 = 5;
/// Floating-point operations in [`flux_mul`].
pub const FLOPS_FLUX: u64 = 1;
/// Floating-point operations in [`accumulate`].
pub const FLOPS_ACCUM: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_constant_is_exact() {
        // 7/12*2c - 1/12*2c = c (14-2)/12 = c; constant fields are
        // reproduced exactly.
        for c in [1.0, -3.5, 0.25] {
            let v = face_interp(c, c, c, c);
            assert!((v - c).abs() < 1e-15, "{v} vs {c}");
        }
    }

    #[test]
    fn interp_linear_is_exact() {
        // A 4th-order interpolation reproduces linear (and cubic)
        // profiles exactly: phi(i) = a + b*i at cells -2,-1,0,1 gives the
        // cell-average = point value for linear, face value at -1/2.
        let f = |i: f64| 2.0 + 3.0 * i;
        // Cells m2=-2, m1=-1, p0=0, p1=1; face between -1 and 0 is at -0.5.
        let v = face_interp(f(-2.0), f(-1.0), f(0.0), f(1.0));
        assert!((v - f(-0.5)).abs() < 1e-14);
    }

    #[test]
    fn interp_cubic_cell_averages_exact() {
        // For cell AVERAGES of a cubic, Eq. 6 reconstructs the face value
        // with zero error (the O(Δx^4) term vanishes). Cell average of
        // x^3 over [i-1/2, i+1/2] is i^3 + i/4.
        let avg = |i: f64| i * i * i + 0.25 * i;
        let v = face_interp(avg(-2.0), avg(-1.0), avg(0.0), avg(1.0));
        let exact = -0.5f64 * -0.5 * -0.5;
        assert!((v - exact).abs() < 1e-14, "{v} vs {exact}");
    }

    #[test]
    fn interp_4th_order_convergence() {
        // For smooth non-polynomial data the error must shrink ~16x per
        // halving of h.
        let g = |x: f64| (x).sin();
        // Cell average of sin over [x-h/2, x+h/2] = (cos(x-h/2)-cos(x+h/2))/h
        let avg = |x: f64, h: f64| ((x - h / 2.0).cos() - (x + h / 2.0).cos()) / h;
        let err = |h: f64| {
            let xf = 0.3; // face position
            let v = face_interp(
                avg(xf - 1.5 * h, h),
                avg(xf - 0.5 * h, h),
                avg(xf + 0.5 * h, h),
                avg(xf + 1.5 * h, h),
            );
            (v - g(xf)).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        let rate = (e1 / e2).log2();
        assert!(rate > 3.7 && rate < 4.3, "convergence rate {rate}");
    }

    #[test]
    fn accumulate_telescopes() {
        // Summing accumulate over a row of cells telescopes to the
        // boundary fluxes — the discrete conservation property.
        let fluxes = [1.0, 4.0, 9.0, 16.0, 25.0];
        let mut total = 0.0;
        for i in 0..4 {
            total = accumulate(total, fluxes[i], fluxes[i + 1]);
        }
        assert_eq!(total, fluxes[4] - fluxes[0]);
    }

    #[test]
    fn flux_is_plain_product() {
        assert_eq!(flux_mul(3.0, -2.0), -6.0);
        assert_eq!(flux_mul(0.0, 5.0), 0.0);
    }
}
