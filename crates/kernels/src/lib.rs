//! The CFD flux-kernel exemplar (paper Section III).
//!
//! The exemplar is a simplified finite-volume flux kernel retaining the
//! two structural challenges of real CFD codes: loops with different
//! centerings (faces vs. cells) that cannot be trivially fused, and
//! successive operations with non-trivial dependencies. Per direction
//! `d` and component `c`:
//!
//! 1. **`EvalFlux1`** (Eq. 6) — interpolate the cell-averaged solution to
//!    faces at 4th order:
//!    `⟨φ⟩_{i+e^d/2} = 7/12 (⟨φ⟩_i + ⟨φ⟩_{i+e^d}) − 1/12 (⟨φ⟩_{i+2e^d} + ⟨φ⟩_{i−e^d})`.
//! 2. **`EvalFlux2`** (Eq. 7) — multiply by the face velocity (component
//!    `d+1` of the interpolated solution): `Δx⟨F^d⟩ = ⟨φ_{d+1}⟩⟨φ⟩`.
//! 3. **Accumulate** — `phi1(cell) += flux(cell + e^d) − flux(cell)`.
//!
//! This crate provides the point kernels, whole-box reference operators
//! (the "series of loops" schedule in its simplest form — the ground
//! truth every schedule variant must match bitwise), operation-count
//! analytics, and the ghost-cell-ratio formula behind Figure 1.

// Pointer-walk inner loops and per-direction index arithmetic are the
// deliberate idiom here; the flagged clippy styles would obscure them.
#![allow(
    clippy::needless_range_loop,
    clippy::explicit_counter_loop,
    clippy::should_implement_trait
)]
pub mod boxops;
pub mod ghost;
pub mod gradient;
pub mod ops;
pub mod point;
pub mod reference;

pub use point::{accumulate, face_interp, flux_mul};

/// Number of solution components: `[ρ, u, v, w, e]` (Eq. 5).
pub const NCOMP: usize = 5;

/// Component indices into the solution vector.
pub mod comp {
    /// Density.
    pub const RHO: usize = 0;
    /// x-velocity.
    pub const U: usize = 1;
    /// y-velocity.
    pub const V: usize = 2;
    /// z-velocity.
    pub const W: usize = 3;
    /// Energy.
    pub const E: usize = 4;
}

/// The component of the interpolated face solution that acts as the
/// advection velocity for direction `d` (the paper's `flux[component
/// dir+1]`, Fig. 6 line 11).
#[inline]
pub const fn vel_comp(d: usize) -> usize {
    d + 1
}

/// Ghost-layer width required by the 4th-order face interpolation: the
/// face at index `f` reads cells `f-2 .. f+1`, so faces on the box
/// boundary reach 2 cells outside the valid region.
pub const GHOST: i32 = 2;
