//! The Figure 1 motivation, measured: ghost-cell exchange cost for the
//! same total cell count at different box sizes. Smaller boxes mean
//! more surface area — more bytes copied and more time in exchange.

use pdesched_bench::harness::Group;
use pdesched_kernels::{GHOST, NCOMP};
use pdesched_mesh::{DisjointBoxLayout, IBox, LevelData, ProblemDomain};

fn main() {
    let domain = 64;
    let group = Group::new("exchange_64cubed_domain", 10);
    for box_size in [8, 16, 32, 64] {
        let layout =
            DisjointBoxLayout::uniform(ProblemDomain::periodic(IBox::cube(domain)), box_size);
        let mut ld = LevelData::new(layout, NCOMP, GHOST);
        ld.fill_synthetic(29);
        // Report the storage blow-up alongside (printed once per size).
        let ghost_ratio = ld.total_bytes() as f64 / ((domain as f64).powi(3) * NCOMP as f64 * 8.0);
        eprintln!("box {box_size:>3}: total/physical bytes = {ghost_ratio:.3}");
        group.bench(&format!("{box_size}"), || ld.exchange());
    }
}
