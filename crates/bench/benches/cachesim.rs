//! Throughput of the cache simulator itself (accesses per second) — it
//! bounds how fast the figure pipeline can measure traffic.

use pdesched_bench::harness::Group;
use pdesched_cachesim::{CacheConfig, Hierarchy};

const ACCESSES: usize = 200_000;

fn main() {
    let group = Group::new("cachesim", 20);
    eprintln!("cachesim: {ACCESSES} accesses per sample");

    let mut sim = Hierarchy::new(&[
        CacheConfig::new(32 * 1024, 8),
        CacheConfig::new(256 * 1024, 8),
        CacheConfig::new(4 * 1024 * 1024, 16),
    ]);
    group.bench("stream_3level", || {
        for i in 0..ACCESSES {
            sim.read(i * 8);
        }
    });

    let mut sim =
        Hierarchy::new(&[CacheConfig::new(32 * 1024, 8), CacheConfig::new(256 * 1024, 8)]);
    group.bench("hot_l1", || {
        for i in 0..ACCESSES {
            sim.read((i % 2048) * 8);
        }
    });

    let mut sim =
        Hierarchy::new(&[CacheConfig::new(32 * 1024, 8), CacheConfig::new(1024 * 1024, 16)]);
    let row = 64 * 8; // one 64-double row
    group.bench("stencil_pattern", || {
        for i in 0..ACCESSES / 4 {
            let a = i * 8;
            sim.read(a);
            sim.read(a + row);
            sim.read(a + 2 * row);
            sim.write(a);
        }
    });
}
