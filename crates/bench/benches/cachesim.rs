//! Throughput of the cache simulator itself (accesses per second) — it
//! bounds how fast the figure pipeline can measure traffic.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdesched_cachesim::{CacheConfig, Hierarchy};

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("cachesim");
    const ACCESSES: usize = 200_000;
    group.throughput(Throughput::Elements(ACCESSES as u64));
    group.sample_size(20);

    group.bench_function("stream_3level", |b| {
        let mut sim = Hierarchy::new(&[
            CacheConfig::new(32 * 1024, 8),
            CacheConfig::new(256 * 1024, 8),
            CacheConfig::new(4 * 1024 * 1024, 16),
        ]);
        b.iter(|| {
            for i in 0..ACCESSES {
                sim.read(i * 8);
            }
        });
    });

    group.bench_function("hot_l1", |b| {
        let mut sim = Hierarchy::new(&[
            CacheConfig::new(32 * 1024, 8),
            CacheConfig::new(256 * 1024, 8),
        ]);
        b.iter(|| {
            for i in 0..ACCESSES {
                sim.read((i % 2048) * 8);
            }
        });
    });

    group.bench_function("stencil_pattern", |b| {
        let mut sim = Hierarchy::new(&[
            CacheConfig::new(32 * 1024, 8),
            CacheConfig::new(1024 * 1024, 16),
        ]);
        let row = 64 * 8; // one 64-double row
        b.iter(|| {
            for i in 0..ACCESSES / 4 {
                let a = i * 8;
                sim.read(a);
                sim.read(a + row);
                sim.read(a + 2 * row);
                sim.write(a);
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
