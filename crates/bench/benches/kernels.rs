//! Microbenchmarks of the exemplar's building blocks: the three point
//! kernels applied over whole boxes, per direction (the unit-stride x
//! direction vs the strided y/z directions is the spatial-locality story
//! of Section IV-A).

use pdesched_bench::box_pair;
use pdesched_bench::harness::Group;
use pdesched_kernels::boxops::{accumulate_dir, eval_flux1};
use pdesched_kernels::NCOMP;
use pdesched_mesh::FArrayBox;

fn bench_flux1() {
    let n = 64;
    let (phi0, _, cells) = box_pair(n, 17);
    let group = Group::new("eval_flux1_64cubed", 20);
    for d in 0..3 {
        let faces = cells.surrounding_faces(d);
        let mut out = FArrayBox::new(faces, NCOMP);
        group.bench(&format!("dir/{d}"), || eval_flux1(&phi0, d, faces, &mut out, 0..NCOMP));
    }
}

fn bench_accumulate() {
    let n = 64;
    let (_, mut phi1, cells) = box_pair(n, 19);
    let group = Group::new("accumulate_64cubed", 20);
    for d in 0..3 {
        let faces = cells.surrounding_faces(d);
        let mut flux = FArrayBox::new(faces, NCOMP);
        flux.fill_synthetic(23);
        group.bench(&format!("dir/{d}"), || accumulate_dir(&mut phi1, &flux, d, cells, 0..NCOMP));
    }
}

fn bench_gradient() {
    // The second stencil: fusing the three direction passes reads phi
    // once instead of three times — measurable on one core.
    let n = 64;
    let (phi0, _, cells) = box_pair(n, 21);
    let mut out = FArrayBox::new(cells, 3 * NCOMP);
    let group = Group::new("gradient_64cubed", 20);
    group.bench("series", || pdesched_kernels::gradient::gradient_series(&phi0, cells, &mut out));
    group.bench("fused", || pdesched_kernels::gradient::gradient_fused(&phi0, cells, &mut out));
}

fn main() {
    bench_flux1();
    bench_accumulate();
    bench_gradient();
}
