//! Microbenchmarks of the exemplar's building blocks: the three point
//! kernels applied over whole boxes, per direction (the unit-stride x
//! direction vs the strided y/z directions is the spatial-locality story
//! of Section IV-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdesched_bench::box_pair;
use pdesched_kernels::boxops::{accumulate_dir, eval_flux1};
use pdesched_kernels::NCOMP;
use pdesched_mesh::FArrayBox;

fn bench_flux1(c: &mut Criterion) {
    let n = 64;
    let (phi0, _, cells) = box_pair(n, 17);
    let mut group = c.benchmark_group("eval_flux1_64cubed");
    group.sample_size(20);
    for d in 0..3 {
        let faces = cells.surrounding_faces(d);
        let mut out = FArrayBox::new(faces, NCOMP);
        group.bench_with_input(BenchmarkId::new("dir", d), &d, |b, &d| {
            b.iter(|| eval_flux1(&phi0, d, faces, &mut out, 0..NCOMP));
        });
    }
    group.finish();
}

fn bench_accumulate(c: &mut Criterion) {
    let n = 64;
    let (_, mut phi1, cells) = box_pair(n, 19);
    let mut group = c.benchmark_group("accumulate_64cubed");
    group.sample_size(20);
    for d in 0..3 {
        let faces = cells.surrounding_faces(d);
        let mut flux = FArrayBox::new(faces, NCOMP);
        flux.fill_synthetic(23);
        group.bench_with_input(BenchmarkId::new("dir", d), &d, |b, &d| {
            b.iter(|| accumulate_dir(&mut phi1, &flux, d, cells, 0..NCOMP));
        });
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    // The second stencil: fusing the three direction passes reads phi
    // once instead of three times — measurable on one core.
    let n = 64;
    let (phi0, _, cells) = box_pair(n, 21);
    let mut out = FArrayBox::new(cells, 3 * NCOMP);
    let mut group = c.benchmark_group("gradient_64cubed");
    group.sample_size(20);
    group.bench_function("series", |b| {
        b.iter(|| pdesched_kernels::gradient::gradient_series(&phi0, cells, &mut out));
    });
    group.bench_function("fused", |b| {
        b.iter(|| pdesched_kernels::gradient::gradient_fused(&phi0, cells, &mut out));
    });
    group.finish();
}

criterion_group!(benches, bench_flux1, bench_accumulate, bench_gradient);
criterion_main!(benches);
