//! The paper's tile-size sweep ("we tested all tiled implementations
//! with tile sizes of 4, 8, 16, and 32; in general tile sizes of 8 and
//! 16 were the most efficient"), run natively for the two tiled
//! categories.

use pdesched_bench::box_pair;
use pdesched_bench::harness::Group;
use pdesched_core::{run_box, CompLoop, Granularity, IntraTile, NoMem, Variant};

fn main() {
    let n = 64;
    let (phi0, phi1, cells) = box_pair(n, 13);
    let group = Group::new("tile_sweep_64cubed", 10);
    for tile in [4, 8, 16, 32] {
        let ot = Variant::overlapped(IntraTile::ShiftFuse, tile, Granularity::OverBoxes);
        let mut out = phi1.clone();
        group.bench(&format!("ot-shift-fuse/{tile}"), || {
            out.set_val(0.0);
            run_box(ot, &phi0, &mut out, cells, 1, &NoMem)
        });
        let mut wf = Variant::blocked_wavefront(CompLoop::Inside, tile);
        wf.gran = Granularity::OverBoxes;
        let mut out = phi1.clone();
        group.bench(&format!("blocked-wf-cli/{tile}"), || {
            out.set_val(0.0);
            run_box(wf, &phi0, &mut out, cells, 1, &NoMem)
        });
        // Hierarchical ablation: same outer tile, inner tiles of 4.
        if tile > 4 {
            let h = Variant::hierarchical(tile, 4, Granularity::OverBoxes);
            let mut out = phi1.clone();
            group.bench(&format!("hier-ot-inner4/{tile}"), || {
                out.set_val(0.0);
                run_box(h, &phi0, &mut out, cells, 1, &NoMem)
            });
        }
    }
}
