//! The paper's tile-size sweep ("we tested all tiled implementations
//! with tile sizes of 4, 8, 16, and 32; in general tile sizes of 8 and
//! 16 were the most efficient"), run natively for the two tiled
//! categories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdesched_bench::box_pair;
use pdesched_core::{run_box, CompLoop, Granularity, IntraTile, NoMem, Variant};

fn bench_tiles(c: &mut Criterion) {
    let n = 64;
    let (phi0, phi1, cells) = box_pair(n, 13);
    let mut group = c.benchmark_group("tile_sweep_64cubed");
    group.sample_size(10);
    for tile in [4, 8, 16, 32] {
        let ot = Variant::overlapped(IntraTile::ShiftFuse, tile, Granularity::OverBoxes);
        group.bench_with_input(BenchmarkId::new("ot-shift-fuse", tile), &ot, |b, &v| {
            let mut out = phi1.clone();
            b.iter(|| {
                out.set_val(0.0);
                run_box(v, &phi0, &mut out, cells, 1, &NoMem)
            });
        });
        let mut wf = Variant::blocked_wavefront(CompLoop::Inside, tile);
        wf.gran = Granularity::OverBoxes;
        group.bench_with_input(BenchmarkId::new("blocked-wf-cli", tile), &wf, |b, &v| {
            let mut out = phi1.clone();
            b.iter(|| {
                out.set_val(0.0);
                run_box(v, &phi0, &mut out, cells, 1, &NoMem)
            });
        });
        // Hierarchical ablation: same outer tile, inner tiles of 4.
        if tile > 4 {
            let h = Variant::hierarchical(tile, 4, Granularity::OverBoxes);
            group.bench_with_input(BenchmarkId::new("hier-ot-inner4", tile), &h, |b, &v| {
                let mut out = phi1.clone();
                b.iter(|| {
                    out.set_val(0.0);
                    run_box(v, &phi0, &mut out, cells, 1, &NoMem)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tiles);
criterion_main!(benches);
