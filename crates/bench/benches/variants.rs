//! Native single-process counterpart of Figures 10–12: wall time of each
//! schedule category on one box, where the data-locality effects
//! (fusion, tiling) are measurable even on one core.

use pdesched_bench::box_pair;
use pdesched_bench::harness::Group;
use pdesched_core::{run_box, CompLoop, Granularity, IntraTile, NoMem, Variant};

fn main() {
    let n = 48;
    let (phi0, phi1, cells) = box_pair(n, 11);
    let group = Group::new("variants_48cubed", 10);
    let cases: Vec<(&str, Variant)> = vec![
        ("baseline-clo", Variant::baseline()),
        ("baseline-cli", Variant { comp: CompLoop::Inside, ..Variant::baseline() }),
        ("shift-fuse-clo", Variant::shift_fuse()),
        ("shift-fuse-cli", Variant { comp: CompLoop::Inside, ..Variant::shift_fuse() }),
        ("blocked-wf-clo-8", {
            let mut v = Variant::blocked_wavefront(CompLoop::Outside, 8);
            v.gran = Granularity::OverBoxes;
            v
        }),
        ("ot-basic-8", Variant::overlapped(IntraTile::Basic, 8, Granularity::OverBoxes)),
        ("ot-shift-fuse-8", Variant::overlapped(IntraTile::ShiftFuse, 8, Granularity::OverBoxes)),
    ];
    for (name, v) in cases {
        let mut out = phi1.clone();
        group.bench(name, || {
            out.set_val(0.0);
            run_box(v, &phi0, &mut out, cells, 1, &NoMem)
        });
    }
}
