//! Rendering and setup helpers shared by the `repro` binary and the
//! native benches.

use pdesched_machine::figures::Figure;

pub mod harness {
    //! A std-only micro-benchmark harness (offline stand-in for
    //! Criterion): warm up once, take N timed samples, report
    //! min/median/mean on stderr.

    use std::time::{Duration, Instant};

    /// A named group of benchmarks sharing a sample count.
    pub struct Group {
        name: String,
        samples: usize,
    }

    impl Group {
        /// A group taking `samples` timed runs per benchmark.
        pub fn new(name: impl Into<String>, samples: usize) -> Self {
            Group { name: name.into(), samples: samples.max(1) }
        }

        /// Time `f`, discarding one warm-up run.
        pub fn bench<R>(&self, id: &str, mut f: impl FnMut() -> R) {
            std::hint::black_box(f());
            let mut times: Vec<Duration> = (0..self.samples)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(f());
                    t0.elapsed()
                })
                .collect();
            times.sort();
            let min = times[0];
            let median = times[times.len() / 2];
            let mean = times.iter().sum::<Duration>() / times.len() as u32;
            eprintln!(
                "{}/{id}: min {min:.1?}  median {median:.1?}  mean {mean:.1?}  ({} samples)",
                self.name, self.samples
            );
        }
    }
}

/// Quote and escape `s` as a JSON string literal (including the
/// surrounding `"`), so the hand-rolled JSON writers in `repro` and
/// `bench` stay parseable for any input — store paths and labels can
/// legally contain `"`, `\`, or control characters.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a [`Figure`] as an aligned text table: one row per x value,
/// one column per series.
pub fn render_figure(fig: &Figure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", fig.title, fig.id);
    let _ = writeln!(out, "   y: {}", fig.ylabel);
    // Collect the union of x values in order of first appearance.
    let mut xs: Vec<f64> = Vec::new();
    for s in &fig.series {
        for (x, _) in &s.points {
            if !xs.iter().any(|v| v == x) {
                xs.push(*x);
            }
        }
    }
    let mut header = format!("{:>12}", fig.xlabel.split_whitespace().next().unwrap_or("x"));
    for s in &fig.series {
        let _ = write!(header, "  {:>28}", truncate(&s.label, 28));
    }
    let _ = writeln!(out, "{header}");
    for &x in &xs {
        let mut row = format!("{:>12}", trim_float(x));
        for s in &fig.series {
            match s.points.iter().find(|(px, _)| *px == x) {
                Some((_, y)) => {
                    let _ = write!(row, "  {:>28}", format!("{y:.4}"));
                }
                None => {
                    let _ = write!(row, "  {:>28}", "-");
                }
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

/// Build a filled single-box test pair: `phi0` with 2 ghost layers of
/// synthetic data and a zeroed `phi1`, over an `n^3` box.
pub fn box_pair(
    n: i32,
    seed: u64,
) -> (pdesched_mesh::FArrayBox, pdesched_mesh::FArrayBox, pdesched_mesh::IBox) {
    use pdesched_kernels::{GHOST, NCOMP};
    use pdesched_mesh::{FArrayBox, IBox};
    let cells = IBox::cube(n);
    let mut phi0 = FArrayBox::new(cells.grown(GHOST), NCOMP);
    phi0.fill_synthetic(seed);
    let phi1 = FArrayBox::new(cells, NCOMP);
    (phi0, phi1, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdesched_machine::figures::{Figure, Series};

    #[test]
    fn render_produces_rows_and_columns() {
        let fig = Figure {
            id: "figX".into(),
            title: "Test".into(),
            xlabel: "Threads".into(),
            ylabel: "Seconds".into(),
            series: vec![
                Series { label: "a".into(), points: vec![(1.0, 2.0), (2.0, 1.0)] },
                Series { label: "b".into(), points: vec![(1.0, 4.0)] },
            ],
        };
        let text = render_figure(&fig);
        assert!(text.contains("figX"));
        assert!(text.contains("2.0000"));
        // Missing point rendered as '-'.
        assert!(text.lines().last().unwrap().contains('-'));
        // Two x rows plus headers.
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn json_str_escapes_hostile_input() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("line\nbreak\ttab\rcr"), "\"line\\nbreak\\ttab\\rcr\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through (JSON strings are UTF-8).
        assert_eq!(json_str("μs"), "\"μs\"");
    }

    #[test]
    fn box_pair_shapes() {
        let (phi0, phi1, cells) = box_pair(8, 1);
        assert_eq!(cells.num_pts(), 512);
        assert_eq!(phi0.region(), cells.grown(2));
        assert_eq!(phi1.region(), cells);
        assert!(phi0.data().iter().all(|v| *v != 0.0));
        assert!(phi1.data().iter().all(|v| *v == 0.0));
    }
}
