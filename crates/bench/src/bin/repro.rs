//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fast] [--store PATH] [--threads N] [--json PATH] \
//!       [fig1|fig2|fig3|fig4|table1|fig9|fig10|fig11|fig12|bandwidth|ablation|sweep|plandump|faultcheck|all]...
//! repro plan <variant-name> [--n N] [--threads T]
//! ```
//!
//! `repro plan` prints the lowered schedule IR (`pdesched_core::plan`)
//! for one variant — its buffers, phases, barriers, and recompute
//! regions — for an `N`^3 box (default 32) at `T` threads (default 8).
//! Variant names are the display names from the extended enumeration,
//! e.g. `repro plan 'Blocked WF-CLI-4: P<Box'`. The `plandump` target
//! writes the same dumps for the seven named Figure 10 schedules to
//! `target/plan-dumps/` (CI uploads them as an artifact).
//!
//! * `--store PATH` — persist/reuse cache-simulator traffic measurements
//!   (default `target/traffic-cache.txt`). The store is versioned: a
//!   schema change discards stale entries automatically. The first full
//!   run pays the trace simulation; subsequent runs are instant (the
//!   per-stage `hits/misses` line proves no re-simulation happened).
//! * `--threads N` — measurement workers for the parallel sweep engine
//!   (default: all available cores). Parallelism never changes output:
//!   measurements are deterministic and figure generation is serial.
//! * `--json PATH` — also write every figure's series plus per-stage
//!   wall time and cache counters as JSON (e.g. `BENCH_sweep.json`).
//! * `--fast` — substitute 64^3 for the 128^3 box in the scaling
//!   figures (roughly 8x cheaper traces; shapes are preserved but the
//!   cache-residency crossover shifts).
//!
//! Fault tolerance: a sim point whose measurement panics is recorded as
//! failed and the remaining points (and targets) still complete; the
//! failure list and the store's health counters (corrupt/torn lines
//! recovered at load, failed appends) are part of `--json`. The store
//! accepts a single writer at a time — a second concurrent `repro` run
//! degrades to read-only memoization instead of interleaving appends.
//! The `faultcheck` target plus the `REPRO_FAULT` environment variable
//! (`panic-sim:K` or `fail-append:N`, 0-based) exercise this machinery
//! deterministically end to end; CI runs it.

use pdesched_bench::render_figure;
use pdesched_cachesim::CacheConfig;
use pdesched_core::storage::{expected, paper_formula};
use pdesched_core::{Category, Variant};
use pdesched_machine::{figures, sweep};
use pdesched_machine::{FaultHook, MachineSpec, PointFailure, SimPoint, SweepEngine, TrafficCache};

/// Wall time and cache activity of one regenerated target.
struct Stage {
    name: String,
    seconds: f64,
    hits: u64,
    misses: u64,
}

/// Fault injection requested via `REPRO_FAULT` (for the deterministic
/// end-to-end robustness tests; see module docs).
struct EnvFault {
    panic_sim: Option<u64>,
    fail_append_every: Option<u64>,
}

impl FaultHook for EnvFault {
    fn before_simulation(&self, sim_index: u64, _key: &str) {
        if self.panic_sim == Some(sim_index) {
            panic!("injected fault (REPRO_FAULT): panic on simulation {sim_index}");
        }
    }
    fn fail_append(&self, append_index: u64) -> bool {
        self.fail_append_every.is_some_and(|n| n != 0 && (append_index + 1).is_multiple_of(n))
    }
}

/// Parse `REPRO_FAULT` (`panic-sim:K` | `fail-append:N`).
fn env_fault() -> Option<EnvFault> {
    let spec = std::env::var("REPRO_FAULT").ok()?;
    let mut fault = EnvFault { panic_sim: None, fail_append_every: None };
    for part in spec.split(',') {
        match part.split_once(':').and_then(|(k, v)| Some((k, v.parse::<u64>().ok()?))) {
            Some(("panic-sim", k)) => fault.panic_sim = Some(k),
            Some(("fail-append", n)) => fault.fail_append_every = Some(n),
            _ => {
                eprintln!("repro: ignoring unrecognized REPRO_FAULT part '{part}'");
            }
        }
    }
    Some(fault)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("plan") {
        run_plan_command(&args[1..]);
        return;
    }
    let mut store = String::from("target/traffic-cache.txt");
    let mut json: Option<String> = None;
    let mut fast = false;
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut wanted: Vec<String> = Vec::new();
    fn usage(msg: &str) -> ! {
        eprintln!("repro: {msg}");
        eprintln!("usage: repro [--fast] [--store PATH] [--threads N] [--json PATH] [TARGET]...");
        std::process::exit(2);
    }
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--store" => store = it.next().unwrap_or_else(|| usage("--store needs a path")),
            "--json" => json = Some(it.next().unwrap_or_else(|| usage("--json needs a path"))),
            "--threads" => {
                threads = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs a number"))
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag '{flag}'")),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig1",
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "bandwidth",
            "ablation",
            "sweep",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut cache = TrafficCache::with_store(&store);
    if let Some(fault) = env_fault() {
        eprintln!("[repro] REPRO_FAULT set: deterministic fault injection armed");
        cache = cache.with_fault_hook(std::sync::Arc::new(fault));
    }
    let engine = SweepEngine::new(threads).with_progress(true);
    let machines = MachineSpec::evaluation_nodes();
    let big_n = if fast { 64 } else { 128 };
    if fast {
        eprintln!("[repro] --fast: using 64^3 in place of 128^3 (shape-preserving, cheaper)");
    }
    eprintln!(
        "[repro] store {store} ({} entries{}), {} measurement threads",
        cache.len(),
        if cache.store_read_only() {
            ", READ-ONLY: another live repro holds the store lock"
        } else {
            ""
        },
        engine.nthreads()
    );
    let loaded = cache.stats();
    if loaded.corrupt_lines > 0 {
        eprintln!(
            "[repro] store recovery: {} corrupt/torn line(s) quarantined to {store}.quarantine",
            loaded.corrupt_lines
        );
    }

    let mut stages: Vec<Stage> = Vec::new();
    let mut json_figures: Vec<figures::Figure> = Vec::new();
    let mut failures: Vec<(String, PointFailure)> = Vec::new();
    for w in &wanted {
        let t0 = std::time::Instant::now();
        let before = cache.stats();
        let mut fig: Option<figures::Figure> = None;
        match w.as_str() {
            "fig1" => fig = Some(figures::figure1()),
            "table1" => print_table1(),
            "fig2" | "fig3" | "fig4" => {
                let spec = &machines[w[3..].parse::<usize>().unwrap() - 2];
                prewarm(&engine, &cache, w, figures::figure234_points(spec, big_n), &mut failures);
                fig = Some(figures::figure234_sized(spec, &cache, w, big_n));
            }
            "fig9" => {
                prewarm(&engine, &cache, w, figures::figure9_points(), &mut failures);
                fig = Some(figures::figure9(&cache));
            }
            "fig10" | "fig11" | "fig12" => {
                let spec = &machines[w[3..].parse::<usize>().unwrap() - 10];
                prewarm(&engine, &cache, w, figures::figure1012_points(spec), &mut failures);
                fig = Some(figures::figure1012(spec, &cache, w));
            }
            "bandwidth" => {
                prewarm(&engine, &cache, w, figures::bandwidth_points(), &mut failures);
                print_bandwidth(&cache);
            }
            "plandump" => print_plandump(&machines[0], big_n),
            "ablation" => print_ablation(),
            "sweep" => print_sweep(&cache, &engine),
            "faultcheck" => print_faultcheck(&cache, &engine, &mut failures),
            other => {
                eprintln!("[repro] unknown target '{other}'");
                continue;
            }
        }
        if let Some(f) = fig {
            print!("{}", render_figure(&f));
            json_figures.push(f);
        }
        let s = cache.stats();
        let stage = Stage {
            name: w.clone(),
            seconds: t0.elapsed().as_secs_f64(),
            hits: s.hits - before.hits,
            misses: s.misses - before.misses,
        };
        eprintln!(
            "[repro] {w} done in {:.1?} ({} hits / {} misses, {} traces cached)",
            t0.elapsed(),
            stage.hits,
            stage.misses,
            cache.len()
        );
        stages.push(stage);
    }
    let total = cache.stats();
    eprintln!(
        "[repro] all done: {} cache hits, {} simulations, {} traces cached",
        total.hits,
        total.misses,
        cache.len()
    );
    if !failures.is_empty() {
        eprintln!("[repro] WARNING: {} measurement point(s) failed:", failures.len());
        for (stage, f) in &failures {
            eprintln!("[repro]   {stage}: {} n={}: {}", f.variant, f.n, f.error);
        }
    }
    if total.store_errors > 0 || total.corrupt_lines > 0 {
        eprintln!(
            "[repro] WARNING: store health: {} corrupt line(s) recovered, {} failed append(s)",
            total.corrupt_lines, total.store_errors
        );
    }
    if let Some(path) = json {
        let doc = render_json(&stages, &json_figures, &cache, fast, engine.nthreads(), &failures);
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("[repro] wrote {path}");
    }
}

/// `repro plan <variant-name> [--n N] [--threads T]`: lower one
/// schedule to the plan IR and print it.
fn run_plan_command(args: &[String]) {
    let mut name: Option<String> = None;
    let mut n: i32 = 32;
    let mut threads: usize = 8;
    fn usage(msg: &str) -> ! {
        eprintln!("repro plan: {msg}");
        eprintln!("usage: repro plan <variant-name> [--n N] [--threads T]");
        std::process::exit(2);
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                n = it
                    .next()
                    .unwrap_or_else(|| usage("--n needs a box size"))
                    .parse()
                    .unwrap_or_else(|_| usage("--n needs a number"))
            }
            "--threads" => {
                threads = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs a number"))
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag '{flag}'")),
            other if name.is_none() => name = Some(other.to_string()),
            other => usage(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(name) = name else { usage("missing variant name") };
    let candidates: Vec<Variant> =
        Variant::enumerate_extended(n).into_iter().filter(|v| v.valid_for_box(n)).collect();
    let Some(&variant) = candidates.iter().find(|v| v.name().eq_ignore_ascii_case(name.trim()))
    else {
        eprintln!("repro plan: no variant named '{name}' is valid for a {n}^3 box; valid names:");
        for v in &candidates {
            eprintln!("  {}", v.name());
        }
        std::process::exit(2);
    };
    let plan = pdesched_core::plan_for(variant, pdesched_mesh::IntVect::splat(n), threads);
    print!("{}", plan.render());
}

/// Write plan dumps for the seven named Figure 10 schedules to
/// `target/plan-dumps/` (the CI artifact) and print them.
fn print_plandump(spec: &MachineSpec, n: i32) {
    let dir = std::path::Path::new("target/plan-dumps");
    std::fs::create_dir_all(dir).expect("create target/plan-dumps");
    println!("== Lowered plans for the Figure 10 schedules ({}, N={n}) ==", spec.name);
    for (name, variant) in figures::n128_variants(spec) {
        let threads =
            if variant.gran == pdesched_core::Granularity::WithinBox { spec.cores() } else { 1 };
        let plan = pdesched_core::plan_for(variant, pdesched_mesh::IntVect::splat(n), threads);
        let text = plan.render();
        let slug: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.txt"));
        std::fs::write(&path, &text).expect("write plan dump");
        println!("-- {name} -> {} --", path.display());
        print!("{text}");
    }
}

/// Prewarm one target's simulation points, narrating to stderr and
/// collecting per-point measurement failures (the target still renders
/// from whatever did complete).
fn prewarm(
    engine: &SweepEngine,
    cache: &TrafficCache,
    target: &str,
    points: Vec<pdesched_machine::SimPoint>,
    failures: &mut Vec<(String, PointFailure)>,
) {
    let r = engine.prewarm(cache, &points);
    if r.measured > 0 || !r.failed.is_empty() {
        eprintln!(
            "[repro] {target}: measured {} of {} unique points in {:.1}s on {} threads{}",
            r.measured,
            r.unique,
            r.seconds,
            engine.nthreads(),
            if r.failed.is_empty() {
                String::new()
            } else {
                format!(", {} FAILED", r.failed.len())
            }
        );
    } else {
        eprintln!("[repro] {target}: all {} points already cached", r.unique);
    }
    failures.extend(r.failed.into_iter().map(|f| (target.to_string(), f)));
}

/// Tiny deterministic fault-tolerance check (seconds, not minutes):
/// two cheap simulation points over a small hierarchy, meant to be run
/// with `REPRO_FAULT` set so an injected panic or append failure flows
/// through the engine, the store, and the `--json` report end to end.
fn print_faultcheck(
    cache: &TrafficCache,
    engine: &SweepEngine,
    failures: &mut Vec<(String, PointFailure)>,
) {
    let configs = vec![CacheConfig::new(8 * 1024, 4), CacheConfig::new(64 * 1024, 8)];
    let points: Vec<SimPoint> = [Variant::baseline(), Variant::shift_fuse()]
        .iter()
        .map(|&v| SimPoint { variant: v, n: 8, configs: configs.clone() })
        .collect();
    prewarm(engine, cache, "faultcheck", points.clone(), failures);
    println!("== faultcheck: deterministic fault-injection probe ==");
    for p in &points {
        let status = if cache.contains(p.variant, p.n, &p.configs) { "ok" } else { "FAILED" };
        println!("  {:<34} n={:<4} {status}", p.variant.name(), p.n);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize stages + figures + cache counters as JSON (no external
/// dependencies, so the writer is by hand; the shape is stable and
/// documented in the README).
fn render_json(
    stages: &[Stage],
    figs: &[figures::Figure],
    cache: &TrafficCache,
    fast: bool,
    threads: usize,
    failures: &[(String, PointFailure)],
) -> String {
    use std::fmt::Write;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"fast\": {fast},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let s = cache.stats();
    let _ = writeln!(
        j,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},",
        s.hits,
        s.misses,
        cache.len()
    );
    let (ph, pm, pe) = pdesched_core::plan::cache_stats();
    let _ =
        writeln!(j, "  \"plan_cache\": {{\"hits\": {ph}, \"misses\": {pm}, \"entries\": {pe}}},");
    let _ = writeln!(
        j,
        "  \"store\": {{\"path\": {}, \"read_only\": {}, \"corrupt_lines\": {}, \"store_errors\": {}}},",
        cache
            .store_path()
            .map(|p| format!("\"{}\"", json_escape(&p.display().to_string())))
            .unwrap_or_else(|| "null".into()),
        cache.store_read_only(),
        s.corrupt_lines,
        s.store_errors
    );
    let _ = writeln!(j, "  \"failures\": [");
    for (i, (stage, f)) in failures.iter().enumerate() {
        let comma = if i + 1 < failures.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"stage\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"error\": \"{}\"}}{comma}",
            json_escape(stage),
            json_escape(&f.variant),
            f.n,
            json_escape(&f.error)
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"stages\": [");
    for (i, st) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"target\": \"{}\", \"seconds\": {:.6}, \"hits\": {}, \"misses\": {}}}{comma}",
            json_escape(&st.name),
            st.seconds,
            st.hits,
            st.misses
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"figures\": [");
    for (i, f) in figs.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"id\": \"{}\",", json_escape(&f.id));
        let _ = writeln!(j, "      \"title\": \"{}\",", json_escape(&f.title));
        let _ = writeln!(j, "      \"xlabel\": \"{}\",", json_escape(&f.xlabel));
        let _ = writeln!(j, "      \"ylabel\": \"{}\",", json_escape(&f.ylabel));
        let _ = writeln!(j, "      \"series\": [");
        for (k, srs) in f.series.iter().enumerate() {
            let pts: Vec<String> = srs.points.iter().map(|(x, y)| format!("[{x}, {y}]")).collect();
            let comma = if k + 1 < f.series.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        {{\"label\": \"{}\", \"points\": [{}]}}{comma}",
                json_escape(&srs.label),
                pts.join(", ")
            );
        }
        let _ = writeln!(j, "      ]");
        let comma = if i + 1 < figs.len() { "," } else { "" };
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn print_table1() {
    // Table I for the paper's parameters: C = 5 components, P threads,
    // tile size T. Printed for N = 128, T = 16, P = 24 alongside this
    // implementation's exact (measured-equal) formulas.
    let (n, t, p) = (128, 16, 24);
    println!("== Table I: temporary data per schedule (N={n}, T={t}, C=5, P={p}) ==");
    println!(
        "{:<34} {:>16} {:>16} {:>18} {:>18}",
        "Schedule", "paper flux", "paper velocity", "ours flux (CLO)", "ours velocity"
    );
    let rows: [(&str, Category, Variant); 4] = [
        ("Series of Loops", Category::Series, Variant::baseline()),
        ("Loops shifted and fused", Category::ShiftFuse, Variant::shift_fuse()),
        (
            "Loops shifted, fused, tiled",
            Category::BlockedWavefront,
            Variant::blocked_wavefront(pdesched_core::CompLoop::Outside, t),
        ),
        (
            "Shifted, fused, overlapping tiles",
            Category::OverlappedTile,
            Variant::overlapped(
                pdesched_core::IntraTile::ShiftFuse,
                t,
                pdesched_core::Granularity::WithinBox,
            ),
        ),
    ];
    for (label, cat, variant) in rows {
        let paper = paper_formula(cat, n, t, p);
        let ours = expected(variant, n, p);
        println!(
            "{:<34} {:>16} {:>16} {:>18} {:>18}",
            label, paper.flux_f64, paper.vel_f64, ours.flux_f64, ours.vel_f64
        );
    }
}

/// Design-choice ablations (analytic-model predictions, instant): the
/// tile-size sweep the paper reports ("tile sizes of 8 and 16 were the
/// most efficient") and the hierarchical-OT extension, on the Ivy
/// Bridge node at full threads, N = 128.
fn print_ablation() {
    use pdesched_core::{Granularity, IntraTile};
    use pdesched_machine::model::predict_time_analytic;
    use pdesched_machine::Workload;
    let spec = MachineSpec::ivy_bridge_node();
    let t = spec.cores();
    let wl = Workload::paper(128);
    println!("== Ablations (analytic model, {} @ {t} threads, N=128) ==", spec.name);
    println!("{:<34} {:>12}", "schedule", "pred. time");
    let mut rows: Vec<Variant> = Vec::new();
    for tile in [4, 8, 16, 32] {
        rows.push(Variant::overlapped(IntraTile::ShiftFuse, tile, Granularity::WithinBox));
    }
    for tile in [8, 16, 32] {
        rows.push(Variant::hierarchical(tile, 4, Granularity::WithinBox));
    }
    rows.push(Variant::blocked_wavefront(pdesched_core::CompLoop::Inside, 8));
    rows.push(Variant::shift_fuse());
    rows.push(Variant::baseline());
    for v in rows {
        let p = predict_time_analytic(&spec, v, wl, t);
        println!("{:<34} {:>10.4}s", v.name(), p.seconds);
    }
}

/// Full design-space ranking per machine: the analytic model screens
/// every candidate instantly, then the simulator-backed model confirms
/// the N=16 short list (measurements prewarmed in parallel).
fn print_sweep(cache: &TrafficCache, engine: &SweepEngine) {
    for spec in MachineSpec::evaluation_nodes() {
        for n in [16, 128] {
            let ranked = sweep::rank_all(&spec, n);
            println!(
                "== Top schedules on {} for N={n} ({} candidates, {} threads) ==",
                spec.name,
                ranked.len(),
                spec.cores()
            );
            for r in ranked.iter().take(5) {
                println!("  {:<36} {:>10.4}s", r.variant.name(), r.prediction.seconds);
            }
        }
        let confirmed = sweep::rank_top_measured(&spec, 16, 3, cache, engine);
        println!("-- simulator-confirmed top 3 for N=16 --");
        for r in &confirmed {
            println!("  {:<36} {:>10.4}s", r.variant.name(), r.prediction.seconds);
        }
    }
}

fn print_bandwidth(cache: &TrafficCache) {
    println!("== Section VI-B: VTune bandwidth observations on the i5-3570K desktop ==");
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>12}",
        "Schedule", "N", "Threads", "model GB/s", "paper GB/s"
    );
    for row in figures::bandwidth_experiment(cache) {
        println!(
            "{:<12} {:>6} {:>8} {:>16.1} {:>12}",
            row.schedule,
            row.n,
            row.threads,
            row.predicted_gbs,
            row.paper_gbs.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
        );
    }
}
