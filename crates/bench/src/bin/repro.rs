//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fast] [--store PATH] \
//!       [fig1|fig2|fig3|fig4|table1|fig9|fig10|fig11|fig12|bandwidth|ablation|all]...
//! ```
//!
//! * `--store PATH` — persist/reuse cache-simulator traffic measurements
//!   (default `target/traffic-cache.txt`); the first full run costs
//!   ~15 min of trace simulation on one core, subsequent runs are
//!   instant.
//! * `--fast` — substitute 64^3 for the 128^3 box in the scaling
//!   figures (roughly 8x cheaper traces; shapes are preserved but the
//!   cache-residency crossover shifts).

use pdesched_bench::render_figure;
use pdesched_core::storage::{expected, paper_formula};
use pdesched_core::{Category, Variant};
use pdesched_machine::figures;
use pdesched_machine::{MachineSpec, TrafficCache};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store = String::from("target/traffic-cache.txt");
    let mut fast = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--store" => store = it.next().expect("--store needs a path"),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig1", "table1", "fig2", "fig3", "fig4", "fig9", "fig10", "fig11", "fig12",
            "bandwidth", "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let cache = TrafficCache::with_store(&store);
    let machines = MachineSpec::evaluation_nodes();
    if fast {
        eprintln!("[repro] --fast: using 64^3 in place of 128^3 (shape-preserving, cheaper)");
    }
    for w in &wanted {
        let t0 = std::time::Instant::now();
        match w.as_str() {
            "fig1" => print!("{}", render_figure(&figures::figure1())),
            "table1" => print_table1(),
            "fig2" => print!("{}", render_figure(&fig234(&machines[0], &cache, "fig2", fast))),
            "fig3" => print!("{}", render_figure(&fig234(&machines[1], &cache, "fig3", fast))),
            "fig4" => print!("{}", render_figure(&fig234(&machines[2], &cache, "fig4", fast))),
            "fig9" => print!("{}", render_figure(&figures::figure9(&cache))),
            "fig10" => print!("{}", render_figure(&figures::figure1012(&machines[0], &cache, "fig10"))),
            "fig11" => print!("{}", render_figure(&figures::figure1012(&machines[1], &cache, "fig11"))),
            "fig12" => print!("{}", render_figure(&figures::figure1012(&machines[2], &cache, "fig12"))),
            "bandwidth" => print_bandwidth(&cache),
            "ablation" => print_ablation(),
            "sweep" => print_sweep(),
            other => eprintln!("[repro] unknown target '{other}'"),
        }
        eprintln!("[repro] {w} done in {:.1?} ({} traces cached)", t0.elapsed(), cache.len());
    }
}

fn fig234(
    spec: &MachineSpec,
    cache: &TrafficCache,
    id: &str,
    fast: bool,
) -> figures::Figure {
    if fast {
        figures::figure234_sized(spec, cache, id, 64)
    } else {
        figures::figure234(spec, cache, id)
    }
}

fn print_table1() {
    // Table I for the paper's parameters: C = 5 components, P threads,
    // tile size T. Printed for N = 128, T = 16, P = 24 alongside this
    // implementation's exact (measured-equal) formulas.
    let (n, t, p) = (128, 16, 24);
    println!("== Table I: temporary data per schedule (N={n}, T={t}, C=5, P={p}) ==");
    println!(
        "{:<34} {:>16} {:>16} {:>18} {:>18}",
        "Schedule", "paper flux", "paper velocity", "ours flux (CLO)", "ours velocity"
    );
    let rows: [(&str, Category, Variant); 4] = [
        ("Series of Loops", Category::Series, Variant::baseline()),
        ("Loops shifted and fused", Category::ShiftFuse, Variant::shift_fuse()),
        (
            "Loops shifted, fused, tiled",
            Category::BlockedWavefront,
            Variant::blocked_wavefront(pdesched_core::CompLoop::Outside, t),
        ),
        (
            "Shifted, fused, overlapping tiles",
            Category::OverlappedTile,
            Variant::overlapped(
                pdesched_core::IntraTile::ShiftFuse,
                t,
                pdesched_core::Granularity::WithinBox,
            ),
        ),
    ];
    for (label, cat, variant) in rows {
        let paper = paper_formula(cat, n, t, p);
        let ours = expected(variant, n, p);
        println!(
            "{:<34} {:>16} {:>16} {:>18} {:>18}",
            label, paper.flux_f64, paper.vel_f64, ours.flux_f64, ours.vel_f64
        );
    }
}

/// Design-choice ablations (analytic-model predictions, instant): the
/// tile-size sweep the paper reports ("tile sizes of 8 and 16 were the
/// most efficient") and the hierarchical-OT extension, on the Ivy
/// Bridge node at full threads, N = 128.
fn print_ablation() {
    use pdesched_core::{Granularity, IntraTile};
    use pdesched_machine::model::predict_time_analytic;
    use pdesched_machine::Workload;
    let spec = MachineSpec::ivy_bridge_node();
    let t = spec.cores();
    let wl = Workload::paper(128);
    println!("== Ablations (analytic model, {} @ {t} threads, N=128) ==", spec.name);
    println!("{:<34} {:>12}", "schedule", "pred. time");
    let mut rows: Vec<Variant> = Vec::new();
    for tile in [4, 8, 16, 32] {
        rows.push(Variant::overlapped(IntraTile::ShiftFuse, tile, Granularity::WithinBox));
    }
    for tile in [8, 16, 32] {
        rows.push(Variant::hierarchical(tile, 4, Granularity::WithinBox));
    }
    rows.push(Variant::blocked_wavefront(pdesched_core::CompLoop::Inside, 8));
    rows.push(Variant::shift_fuse());
    rows.push(Variant::baseline());
    for v in rows {
        let p = predict_time_analytic(&spec, v, wl, t);
        println!("{:<34} {:>10.4}s", v.name(), p.seconds);
    }
}

/// Full design-space ranking per machine (analytic model): the "which
/// schedule should I use here?" answer the paper's conclusions call
/// for automating.
fn print_sweep() {
    for spec in MachineSpec::evaluation_nodes() {
        for n in [16, 128] {
            let ranked = pdesched_machine::sweep::rank_all(&spec, n);
            println!(
                "== Top schedules on {} for N={n} ({} candidates, {} threads) ==",
                spec.name,
                ranked.len(),
                spec.cores()
            );
            for r in ranked.iter().take(5) {
                println!("  {:<36} {:>10.4}s", r.variant.name(), r.prediction.seconds);
            }
        }
    }
}

fn print_bandwidth(cache: &TrafficCache) {
    println!("== Section VI-B: VTune bandwidth observations on the i5-3570K desktop ==");
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>12}",
        "Schedule", "N", "Threads", "model GB/s", "paper GB/s"
    );
    for row in figures::bandwidth_experiment(cache) {
        println!(
            "{:<12} {:>6} {:>8} {:>16.1} {:>12}",
            row.schedule,
            row.n,
            row.threads,
            row.predicted_gbs,
            row.paper_gbs.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
        );
    }
}
