//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fast] [--store PATH] [--threads N] [--json PATH] \
//!       [--deadline SECS] [--point-deadline SECS] \
//!       [fig1|fig2|fig3|fig4|table1|fig9|fig10|fig11|fig12|bandwidth|ablation|sweep|plandump|faultcheck|all]...
//! repro plan <variant-name> [--n N] [--threads T] [--passes SPEC]
//! repro describe <variant-name> [--n N] [--threads T] [--passes SPEC]
//! repro optimize <variant-name> [--n N] [--machine NAME] [--frontier K] [--store PATH]
//! repro serve [--addr HOST:PORT] [--store PATH] [--max-inflight N] \
//!       [--request-deadline SECS] [--stale-ok]
//! ```
//!
//! `repro plan` prints the lowered schedule IR (`pdesched_core::plan`)
//! for one variant — its buffers, phases, barriers, and recompute
//! regions — for an `N`^3 box (default 32) at `T` threads (default 8);
//! `--passes` runs a pass pipeline (DESIGN.md §14) over the lowering
//! first. `repro describe` prints the Section IV prose plus, with
//! `--passes`, a per-pass delta table (barriers removed, phases fused,
//! recompute faces). `repro optimize` runs the model-driven schedule
//! search: every pipeline candidate is ranked with the analytic pair
//! model and the frontier is confirmed by the exact simulator, against
//! a simulator-confirmed hand-written baseline. Variant names are the
//! display names from the extended enumeration, e.g.
//! `repro plan 'Blocked WF-CLI-4: P<Box'`. The `plandump` target writes
//! plan dumps for the seven named Figure 10 schedules to `--out`
//! (default `target/plan-dumps/`, the CI artifact); `--variant` dumps a
//! single named schedule instead, and `--passes` dumps transformed
//! plans under pass-suffixed file names.
//!
//! * `--store PATH` — persist/reuse cache-simulator traffic measurements
//!   (default `target/traffic-cache.txt`). The store is versioned: a
//!   schema change discards stale entries automatically. The first full
//!   run pays the trace simulation; subsequent runs are instant (the
//!   per-stage `hits/misses` line proves no re-simulation happened).
//! * `--threads N` — measurement workers for the parallel sweep engine
//!   (default: all available cores). Parallelism never changes output:
//!   measurements are deterministic and figure generation is serial.
//! * `--json PATH` — also write every figure's series plus per-stage
//!   wall time and cache counters as JSON (e.g. `BENCH_sweep.json`).
//! * `--fast` — substitute 64^3 for the 128^3 box in the scaling
//!   figures (roughly 8x cheaper traces; shapes are preserved but the
//!   cache-residency crossover shifts).
//!
//! Fault tolerance: a sim point whose measurement panics is recorded as
//! failed and the remaining points (and targets) still complete; the
//! failure list and the store's health counters (corrupt/torn lines
//! recovered at load, failed appends) are part of `--json`. The store
//! accepts a single writer at a time — a second concurrent `repro` run
//! degrades to read-only memoization instead of interleaving appends.
//! The `faultcheck` target plus the `REPRO_FAULT` environment variable
//! (`panic-sim:K`, `hang-sim:K`, or `fail-append:N`, 0-based) exercise
//! this machinery deterministically end to end; CI runs it.
//!
//! Supervision (see DESIGN.md "Failure model"): SIGINT/SIGTERM trip a
//! cancel token, the running sweep stops at its next checkpoint, the
//! store is flushed, and a partial `--json` report is written with an
//! `"interrupted"` section — re-running the same command resumes from
//! the store and finishes bit-identical to an uninterrupted run.
//! `--deadline SECS` bounds the whole run the same way;
//! `--point-deadline SECS` kills individual hung measurements without
//! aborting the sweep. Exit codes: 0 complete, 10 interrupted by
//! signal, 11 deadline exceeded, 12 point failures/timeouts,
//! 13 store was read-only (lock held by another repro), 14 sweep
//! fabric stalled, 15 merge conflict, 16 serve could not start.
//!
//! `repro serve` (DESIGN.md §15) turns the traffic store into a
//! long-lived schedule-query service: line-delimited JSON over local
//! TCP, warm answers from an immutable store snapshot (no flock on the
//! read path), cold points measured once per key no matter how many
//! clients ask (request coalescing), admission control past
//! `--max-inflight`, and stale-tagged snapshot answers when another
//! process holds the store lock (`--stale-ok`). SIGINT/SIGTERM drain
//! inflight requests, compact and flush the store, and exit 10.
//! `REPRO_FAULT` grows `drop-req:K` / `hang-req:K` for the
//! request-path storm tests.
//!
//! Sharded sweeps (see DESIGN.md §12): `--shards N --workers K`
//! partitions the measurement space deterministically into N shard
//! stores and runs this process as a *coordinator* that spawns K
//! worker processes (`--shard-worker I`, internal). Workers claim
//! shards by acquiring the shard store's single-writer lock, append
//! heartbeats to the shard journal, and are reclaimed (SIGKILL + shard
//! re-offer) when a heartbeat goes stale; the coordinator respawns
//! crashed workers up to `--fabric-respawns` and finally merge-compacts
//! the shard stores into the canonical store — byte-identical to a
//! serial run regardless of worker interleaving or crashes. Additional
//! `REPRO_FAULT` parts for fabric tests: `abort-sim:K` (process abort,
//! the in-process `kill -9`); `REPRO_FAULT_GUARD=PATH` makes whichever
//! fault fires first claim PATH atomically so a respawned worker
//! doesn't re-fire it forever.

use pdesched_bench::render_figure;
use pdesched_cachesim::CacheConfig;
use pdesched_core::storage::{expected, paper_formula};
use pdesched_core::{Category, Pipeline, Variant};
use pdesched_machine::{coordinator, figures, shard, sweep};
use pdesched_machine::{
    FabricConfig, FabricReport, FaultHook, MachineSpec, PointFailure, PriorSweep, SimPoint,
    SweepBudget, SweepEngine, TrafficCache, TrafficMode, WorkerConfig,
};
use pdesched_par::cancel::{self, CancelToken, Cancelled};
use std::time::Duration;

/// Exit-code taxonomy (documented in README and DESIGN.md): distinct
/// codes so a supervisor shelling out to `repro` can tell an orderly
/// interruption from a degraded-but-finished run.
const EXIT_SIGNAL: i32 = 10;
const EXIT_DEADLINE: i32 = 11;
const EXIT_POINT_FAILURES: i32 = 12;
const EXIT_STORE_READ_ONLY: i32 = 13;
const EXIT_FABRIC_STALLED: i32 = 14;
const EXIT_MERGE_CONFLICT: i32 = 15;
const EXIT_SERVE: i32 = 16;

/// Wall time and cache activity of one regenerated target.
struct Stage {
    name: String,
    seconds: f64,
    hits: u64,
    misses: u64,
    /// Largest per-point engine-thread grant any of this stage's sweeps
    /// received (1 = every point measured on the serial engines).
    engine_threads: usize,
}

/// Fault injection requested via `REPRO_FAULT` (for the deterministic
/// end-to-end robustness tests; see module docs).
struct EnvFault {
    panic_sim: Option<u64>,
    hang_sim: Option<u64>,
    abort_sim: Option<u64>,
    fail_append_every: Option<u64>,
    drop_req: Option<u64>,
    hang_req: Option<u64>,
    /// `REPRO_FAULT_GUARD`: a path claimed atomically (`create_new`)
    /// the first time any planned sim fault is about to fire, across
    /// every process sharing the env. A respawned fabric worker
    /// inherits `REPRO_FAULT` — without the guard an `abort-sim` would
    /// re-fire in every replacement and the fabric could never
    /// converge.
    guard: Option<std::path::PathBuf>,
}

impl EnvFault {
    /// Whether a planned fault may fire: `true` with no guard, else
    /// exactly once across all processes sharing the guard path.
    fn claim_guard(&self) -> bool {
        match &self.guard {
            None => true,
            Some(path) => {
                std::fs::OpenOptions::new().write(true).create_new(true).open(path).is_ok()
            }
        }
    }
}

impl FaultHook for EnvFault {
    fn before_simulation(&self, sim_index: u64, _key: &str) {
        if self.abort_sim == Some(sim_index) && self.claim_guard() {
            eprintln!("[repro] injected fault (REPRO_FAULT): aborting at simulation {sim_index}");
            // No unwinding, no flush, no Drop — the in-process kill -9.
            std::process::abort();
        }
        if self.hang_sim == Some(sim_index) && self.claim_guard() {
            eprintln!("[repro] injected fault (REPRO_FAULT): hanging simulation {sim_index}");
            // Wedge until cancelled (per-point deadline or signal); the
            // hard cap keeps an unsupervised run from hanging forever.
            let t0 = std::time::Instant::now();
            while !cancel::current_is_tripped() && t0.elapsed() < Duration::from_secs(60) {
                std::thread::sleep(Duration::from_millis(1));
            }
            cancel::check_current();
        }
        if self.panic_sim == Some(sim_index) && self.claim_guard() {
            panic!("injected fault (REPRO_FAULT): panic on simulation {sim_index}");
        }
    }
    fn fail_append(&self, append_index: u64) -> bool {
        self.fail_append_every.is_some_and(|n| n != 0 && (append_index + 1).is_multiple_of(n))
    }
}

impl pdesched_machine::ServeHook for EnvFault {
    fn on_request(&self, request_index: u64) -> Option<pdesched_machine::ServeFaultAction> {
        if self.drop_req == Some(request_index) && self.claim_guard() {
            eprintln!("[repro] injected fault (REPRO_FAULT): dropping request {request_index}");
            return Some(pdesched_machine::ServeFaultAction::DropConnection);
        }
        if self.hang_req == Some(request_index) && self.claim_guard() {
            eprintln!("[repro] injected fault (REPRO_FAULT): hanging request {request_index}");
            return Some(pdesched_machine::ServeFaultAction::Hang);
        }
        None
    }
}

/// Parse `REPRO_FAULT` (`panic-sim:K` | `hang-sim:K` | `abort-sim:K` |
/// `fail-append:N`) and `REPRO_FAULT_GUARD` (once-latch path).
fn env_fault() -> Option<EnvFault> {
    let spec = std::env::var("REPRO_FAULT").ok()?;
    let mut fault = EnvFault {
        panic_sim: None,
        hang_sim: None,
        abort_sim: None,
        fail_append_every: None,
        drop_req: None,
        hang_req: None,
        guard: std::env::var("REPRO_FAULT_GUARD").ok().map(Into::into),
    };
    for part in spec.split(',') {
        match part.split_once(':').and_then(|(k, v)| Some((k, v.parse::<u64>().ok()?))) {
            Some(("panic-sim", k)) => fault.panic_sim = Some(k),
            Some(("hang-sim", k)) => fault.hang_sim = Some(k),
            Some(("abort-sim", k)) => fault.abort_sim = Some(k),
            Some(("fail-append", n)) => fault.fail_append_every = Some(n),
            Some(("drop-req", k)) => fault.drop_req = Some(k),
            Some(("hang-req", k)) => fault.hang_req = Some(k),
            _ => {
                eprintln!("repro: ignoring unrecognized REPRO_FAULT part '{part}'");
            }
        }
    }
    Some(fault)
}

/// Async-signal-safe SIGINT/SIGTERM latch. The handler only stores the
/// signal number; a monitor thread polls the latch and trips the run's
/// cancel token, so all actual unwinding happens on normal threads.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicI32, Ordering};

    static PENDING: AtomicI32 = AtomicI32::new(0);

    extern "C" fn on_signal(signum: i32) {
        PENDING.store(signum, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn pending() -> Option<&'static str> {
        match PENDING.load(Ordering::SeqCst) {
            2 => Some("SIGINT"),
            15 => Some("SIGTERM"),
            _ => None,
        }
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn pending() -> Option<&'static str> {
        None
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("plan") => {
            run_plan_command(&args[1..]);
            return;
        }
        Some("describe") => {
            run_describe_command(&args[1..]);
            return;
        }
        Some("optimize") => {
            run_optimize_command(&args[1..]);
            return;
        }
        Some("serve") => {
            run_serve_command(&args[1..]);
        }
        _ => {}
    }
    let mut store = String::from("target/traffic-cache.txt");
    let mut json: Option<String> = None;
    let mut fast = false;
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut deadline: Option<Duration> = None;
    let mut point_deadline: Option<Duration> = None;
    let mut mode = TrafficMode::Simulate;
    let mut shards: usize = 0;
    let mut workers: Option<usize> = None;
    let mut heartbeat_stale = Duration::from_secs(10);
    let mut respawns: Option<usize> = None;
    let mut shard_worker: Option<usize> = None;
    let mut dump_out = String::from("target/plan-dumps");
    let mut dump_passes = String::new();
    let mut dump_variant: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    fn usage(msg: &str) -> ! {
        eprintln!("repro: {msg}");
        eprintln!(
            "usage: repro [--fast] [--store PATH] [--threads N] [--json PATH] \
             [--mode simulate|symbolic|hybrid] \
             [--deadline SECS] [--point-deadline SECS] \
             [--shards N [--workers K] [--heartbeat-stale SECS] [--fabric-respawns N]] \
             [--out DIR] [--passes SPEC] [--variant NAME] \
             [TARGET]...\n\
             \x20      repro plan|describe <variant-name> [--n N] [--threads T] [--passes SPEC]\n\
             \x20      repro optimize <variant-name> [--n N] [--machine NAME] [--frontier K] \
             [--store PATH]\n\
             \x20      repro serve [--addr HOST:PORT] [--store PATH] [--max-inflight N] \
             [--request-deadline SECS] [--stale-ok]"
        );
        std::process::exit(2);
    }
    fn count_flag(value: Option<String>, flag: &str) -> usize {
        let n: usize = value
            .unwrap_or_else(|| usage(&format!("{flag} needs a count")))
            .parse()
            .unwrap_or_else(|_| usage(&format!("{flag} needs a number")));
        n
    }
    fn secs_flag(value: Option<String>, flag: &str) -> Duration {
        let v: f64 = value
            .unwrap_or_else(|| usage(&format!("{flag} needs seconds")))
            .parse()
            .unwrap_or_else(|_| usage(&format!("{flag} needs a number of seconds")));
        if !(v > 0.0 && v.is_finite()) {
            usage(&format!("{flag} needs a positive number of seconds"));
        }
        Duration::from_secs_f64(v)
    }
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--store" => store = it.next().unwrap_or_else(|| usage("--store needs a path")),
            "--json" => json = Some(it.next().unwrap_or_else(|| usage("--json needs a path"))),
            "--threads" => {
                threads = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs a number"))
            }
            "--deadline" => deadline = Some(secs_flag(it.next(), "--deadline")),
            "--point-deadline" => point_deadline = Some(secs_flag(it.next(), "--point-deadline")),
            "--shards" => {
                shards = count_flag(it.next(), "--shards");
                if shards == 0 {
                    usage("--shards needs at least 1");
                }
            }
            "--workers" => {
                let k = count_flag(it.next(), "--workers");
                if k == 0 {
                    usage("--workers needs at least 1");
                }
                workers = Some(k);
            }
            "--heartbeat-stale" => heartbeat_stale = secs_flag(it.next(), "--heartbeat-stale"),
            "--out" => dump_out = it.next().unwrap_or_else(|| usage("--out needs a directory")),
            "--passes" => dump_passes = it.next().unwrap_or_else(|| usage("--passes needs a spec")),
            "--variant" => {
                dump_variant = Some(it.next().unwrap_or_else(|| usage("--variant needs a name")))
            }
            "--fabric-respawns" => respawns = Some(count_flag(it.next(), "--fabric-respawns")),
            "--shard-worker" => shard_worker = Some(count_flag(it.next(), "--shard-worker")),
            "--mode" => {
                mode = match it.next().as_deref() {
                    Some("simulate" | "sim") => TrafficMode::Simulate,
                    Some("symbolic" | "sym") => TrafficMode::Symbolic,
                    Some("hybrid" | "hyb") => TrafficMode::Hybrid,
                    _ => usage("--mode needs one of simulate|symbolic|hybrid"),
                }
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag '{flag}'")),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig1",
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "bandwidth",
            "ablation",
            "sweep",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    if let Some(worker_index) = shard_worker {
        if shards == 0 {
            usage("--shard-worker needs --shards");
        }
        let code = run_shard_worker(&ShardWorkerCli {
            store: &store,
            shards,
            worker_index,
            wanted: &wanted,
            fast,
            threads,
            point_deadline,
            heartbeat_stale,
            mode,
        });
        std::process::exit(code);
    }
    let mut cache = TrafficCache::with_store(&store).with_mode(mode);
    if let Some(fault) = env_fault() {
        eprintln!("[repro] REPRO_FAULT set: deterministic fault injection armed");
        cache = cache.with_fault_hook(std::sync::Arc::new(fault));
    }

    // Supervision: one token for the whole run. Tripping it — from the
    // signal latch, the run deadline, or anything else — stops the
    // running sweep at its next checkpoint; the rest of main then
    // flushes the store, reports, and exits with the documented code.
    let token = CancelToken::new();
    signals::install();
    {
        let token = token.clone();
        let t0 = std::time::Instant::now();
        std::thread::spawn(move || loop {
            if let Some(sig) = signals::pending() {
                token.trip(&format!("signal {sig}"));
                return;
            }
            if let Some(d) = deadline {
                if t0.elapsed() >= d {
                    token.trip(&format!("deadline {:.1}s exceeded", d.as_secs_f64()));
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    // Ambient token on the main thread: serial measurement paths (a
    // figure generator filling a hole in the cache) also stop at plan
    // step-phase checkpoints; the resulting `Cancelled` unwind is caught
    // around the stage loop below.
    let _ambient = cancel::set_current(Some(token.clone()));

    let engine = SweepEngine::new(threads)
        .with_progress(true)
        .with_budget(SweepBudget {
            point_deadline,
            sweep_deadline: None, // the monitor thread owns the run deadline
            max_retries: 2,
            backoff: Duration::from_millis(50),
        })
        .with_cancel_token(token.clone());
    let machines = MachineSpec::evaluation_nodes();
    let big_n = if fast { 64 } else { 128 };
    if fast {
        eprintln!("[repro] --fast: using 64^3 in place of 128^3 (shape-preserving, cheaper)");
    }
    eprintln!(
        "[repro] store {store} ({} entries{}), {} measurement threads",
        cache.len(),
        if cache.store_read_only() {
            ", READ-ONLY: another live repro holds the store lock"
        } else {
            ""
        },
        engine.nthreads()
    );
    let loaded = cache.stats();
    if loaded.corrupt_lines > 0 {
        eprintln!(
            "[repro] store recovery: {} corrupt/torn line(s) quarantined to {store}.quarantine",
            loaded.corrupt_lines
        );
    }

    // Sharded fabric (module docs, DESIGN.md §12): run the multi-process
    // sweep first so the stage loop below renders from the merged store.
    let mut fabric: Option<FabricReport> = None;
    let mut fabric_stalled = false;
    let mut fabric_conflicts = 0usize;
    if shards > 0 {
        if cache.store_read_only() {
            eprintln!(
                "[repro] --shards: cannot coordinate, another live repro holds the store lock"
            );
            drop(cache);
            std::process::exit(EXIT_STORE_READ_ONLY);
        }
        let todo: Vec<SimPoint> = fabric_points(&wanted, &machines, big_n)
            .into_iter()
            .filter(|p| !cache.contains(p.variant, p.n, &p.configs))
            .collect();
        if todo.is_empty() {
            eprintln!("[repro] fabric: every point already stored, no workers needed");
        } else {
            let workers = workers
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                })
                .min(shards.max(1));
            let respawns = respawns.unwrap_or(2 * workers);
            let poll =
                (heartbeat_stale / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
            let cfg = FabricConfig {
                store: std::path::PathBuf::from(&store),
                shards,
                workers,
                heartbeat_stale,
                poll,
                respawns,
            };
            let expected = shard::expected_keys(&todo, shards);
            eprintln!(
                "[repro] fabric: {} point(s) over {shards} shard(s), {workers} worker(s), \
                 respawn budget {respawns}",
                todo.len()
            );
            let exe = std::env::current_exe().expect("resolve current executable");
            let worker_threads = (threads / workers).max(1);
            let report = coordinator::run_fabric(&cfg, &expected, &token, |launch| {
                let mut cmd = std::process::Command::new(&exe);
                cmd.arg("--shard-worker")
                    .arg(launch.to_string())
                    .arg("--shards")
                    .arg(shards.to_string())
                    .arg("--store")
                    .arg(&store)
                    .arg("--threads")
                    .arg(worker_threads.to_string())
                    .arg("--heartbeat-stale")
                    .arg(format!("{}", heartbeat_stale.as_secs_f64()))
                    .arg("--mode")
                    .arg(cache.mode().tag());
                if fast {
                    cmd.arg("--fast");
                }
                if let Some(pd) = point_deadline {
                    cmd.arg("--point-deadline").arg(format!("{}", pd.as_secs_f64()));
                }
                for w in &wanted {
                    cmd.arg(w);
                }
                cmd.spawn()
            })
            .expect("fabric I/O");
            let merged = report
                .merge
                .as_ref()
                .map(|m| format!(", merged {} entries ({} dup)", m.entries, m.duplicates))
                .unwrap_or_default();
            eprintln!(
                "[repro] fabric: {} launch(es), {} reclaim(s), {} kill(s), exits {:?}{merged}",
                report.launches, report.reclaims, report.kills, report.worker_exits
            );
            if report.stalled {
                eprintln!(
                    "[repro] fabric STALLED: respawn budget exhausted with shards incomplete \
                     (see README: exit codes)"
                );
            }
            if let Some(m) = &report.merge {
                for c in &m.conflicts {
                    eprintln!(
                        "[repro] fabric MERGE CONFLICT: key {} remeasured differently by \
                         shard {}",
                        c.key, c.shard
                    );
                }
                fabric_conflicts = m.conflicts.len();
            }
            fabric_stalled = report.stalled;
            fabric = Some(report);
            // Reload the merged entries. flock is per open file
            // description, so the old cache must release the store lock
            // before the reopen can own it.
            drop(cache);
            cache = TrafficCache::with_store(&store).with_mode(mode);
            if let Some(fault) = env_fault() {
                cache = cache.with_fault_hook(std::sync::Arc::new(fault));
            }
            eprintln!("[repro] fabric: store reloaded ({} entries)", cache.len());
        }
    }

    let mut stages: Vec<Stage> = Vec::new();
    let mut json_figures: Vec<figures::Figure> = Vec::new();
    let mut log = RunLog { failures: Vec::new(), resumed_from: None, stage_engine_threads: 1 };
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if fabric_stalled {
            // A stalled fabric left shards incomplete. Rendering now
            // would quietly re-measure the missing points serially —
            // the opposite of what `--shards` asked for — so skip the
            // stages and exit with the stall code instead.
            return;
        }
        for w in &wanted {
            if token.is_tripped() {
                // Cancelled between stages: remaining targets are left
                // for the resume run.
                break;
            }
            let t0 = std::time::Instant::now();
            let before = cache.stats();
            log.stage_engine_threads = 1;
            let mut fig: Option<figures::Figure> = None;
            match w.as_str() {
                "fig1" => fig = Some(figures::figure1()),
                "table1" => print_table1(),
                "fig2" | "fig3" | "fig4" => {
                    let spec = &machines[w[3..].parse::<usize>().unwrap() - 2];
                    if prewarm(&engine, &cache, w, figures::figure234_points(spec, big_n), &mut log)
                    {
                        fig = Some(figures::figure234_sized(spec, &cache, w, big_n));
                    }
                }
                "fig9" => {
                    if prewarm(&engine, &cache, w, figures::figure9_points(), &mut log) {
                        fig = Some(figures::figure9(&cache));
                    }
                }
                "fig10" | "fig11" | "fig12" => {
                    let spec = &machines[w[3..].parse::<usize>().unwrap() - 10];
                    if prewarm(&engine, &cache, w, figures::figure1012_points(spec), &mut log) {
                        fig = Some(figures::figure1012(spec, &cache, w));
                    }
                }
                "bandwidth" => {
                    if prewarm(&engine, &cache, w, figures::bandwidth_points(), &mut log) {
                        print_bandwidth(&cache);
                    }
                }
                "plandump" => print_plandump(
                    &machines[0],
                    big_n,
                    &dump_out,
                    &dump_passes,
                    dump_variant.as_deref(),
                ),
                "ablation" => print_ablation(),
                "sweep" => print_sweep(&cache, &engine, &mut log),
                "faultcheck" => print_faultcheck(&cache, &engine, &mut log),
                other => {
                    eprintln!("[repro] unknown target '{other}'");
                    continue;
                }
            }
            if let Some(f) = fig {
                print!("{}", render_figure(&f));
                json_figures.push(f);
            }
            let s = cache.stats();
            let stage = Stage {
                name: w.clone(),
                seconds: t0.elapsed().as_secs_f64(),
                hits: s.hits - before.hits,
                misses: s.misses - before.misses,
                engine_threads: log.stage_engine_threads,
            };
            eprintln!(
                "[repro] {w} done in {:.1?} ({} hits / {} misses, {} traces cached)",
                t0.elapsed(),
                stage.hits,
                stage.misses,
                cache.len()
            );
            stages.push(stage);
        }
    }));
    let interrupted: Option<String> = match run {
        // A `Cancelled` unwind from a serial measurement checkpoint on
        // the main thread ends the run the same way a between-stage
        // cancellation does; any other panic is a real bug.
        Err(payload) => match payload.downcast::<Cancelled>() {
            Ok(c) => Some(c.reason),
            Err(other) => std::panic::resume_unwind(other),
        },
        Ok(()) => token.is_tripped().then(|| token.reason().unwrap_or_else(|| "cancelled".into())),
    };

    let total = cache.stats();
    eprintln!(
        "[repro] all done: {} cache hits, {} simulations, {} traces cached",
        total.hits,
        total.misses,
        cache.len()
    );
    if !log.failures.is_empty() {
        eprintln!(
            "[repro] WARNING: {} measurement point(s) failed or timed out:",
            log.failures.len()
        );
        for (stage, kind, f) in &log.failures {
            eprintln!("[repro]   {stage}: {} n={} [{kind}]: {}", f.variant, f.n, f.error);
        }
    }
    if total.store_errors > 0 || total.corrupt_lines > 0 {
        eprintln!(
            "[repro] WARNING: store health: {} corrupt line(s) recovered, {} failed append(s)",
            total.corrupt_lines, total.store_errors
        );
    }
    let exit_code = if let Some(reason) = &interrupted {
        if reason.starts_with("signal ") {
            EXIT_SIGNAL
        } else {
            EXIT_DEADLINE
        }
    } else if fabric_stalled {
        EXIT_FABRIC_STALLED
    } else if fabric_conflicts > 0 {
        EXIT_MERGE_CONFLICT
    } else if cache.store_read_only() {
        EXIT_STORE_READ_ONLY
    } else if !log.failures.is_empty() {
        EXIT_POINT_FAILURES
    } else {
        0
    };
    if let Some(reason) = &interrupted {
        cache.flush_store();
        eprintln!(
            "[repro] INTERRUPTED ({reason}): store flushed, {} entries durable; \
             re-run the same command to resume",
            cache.len()
        );
    }
    if let Some(path) = json {
        let doc = render_json(
            &stages,
            &json_figures,
            &cache,
            fast,
            engine.nthreads(),
            &log,
            fabric.as_ref(),
            interrupted.as_deref().map(|r| (r, exit_code)),
        );
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("[repro] wrote {path}");
    }
    if exit_code != 0 {
        eprintln!("[repro] exiting with code {exit_code} (see README: exit codes)");
    }
    drop(cache); // release the store lock before the hard exit
    std::process::exit(exit_code);
}

/// Resolve a display-name variant argument against the extended
/// enumeration valid for an `n`^3 box. One parser for every place a
/// variant name enters the CLI (`repro plan`, `repro describe`,
/// `repro optimize`, `plandump --variant`); an unknown name lists every
/// valid one and exits 2.
fn parse_variant_arg(cmd: &str, name: &str, n: i32) -> Variant {
    let candidates: Vec<Variant> =
        Variant::enumerate_extended(n).into_iter().filter(|v| v.valid_for_box(n)).collect();
    match candidates.iter().find(|v| v.name().eq_ignore_ascii_case(name.trim())) {
        Some(&v) => v,
        None => {
            eprintln!("{cmd}: no variant named '{name}' is valid for a {n}^3 box; valid names:");
            let mut seen = std::collections::HashSet::new();
            for v in &candidates {
                if seen.insert(v.name()) {
                    eprintln!("  {}", v.name());
                }
            }
            std::process::exit(2);
        }
    }
}

/// Parse a `--passes` spec ([`Pipeline::parse`] grammar) or exit 2 with
/// the parser's own message (which lists the known passes).
fn parse_passes_arg(cmd: &str, spec: &str) -> Pipeline {
    Pipeline::parse(spec).unwrap_or_else(|e| {
        eprintln!("{cmd}: {e}");
        std::process::exit(2);
    })
}

/// Shared `<variant-name> [--n N] [--threads T] [--passes SPEC]`
/// argument shape of the `plan` and `describe` subcommands.
struct VariantCli {
    variant: Variant,
    n: i32,
    threads: usize,
    passes: String,
}

fn parse_variant_cli(cmd: &str, args: &[String]) -> VariantCli {
    let mut name: Option<String> = None;
    let mut n: i32 = 32;
    let mut threads: usize = 8;
    let mut passes = String::new();
    let usage = |msg: &str| -> ! {
        eprintln!("{cmd}: {msg}");
        eprintln!("usage: {cmd} <variant-name> [--n N] [--threads T] [--passes SPEC]");
        std::process::exit(2);
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                n = it
                    .next()
                    .unwrap_or_else(|| usage("--n needs a box size"))
                    .parse()
                    .unwrap_or_else(|_| usage("--n needs a number"))
            }
            "--threads" => {
                threads = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs a number"))
            }
            "--passes" => {
                passes = it.next().unwrap_or_else(|| usage("--passes needs a spec")).clone()
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag '{flag}'")),
            other if name.is_none() => name = Some(other.to_string()),
            other => usage(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(name) = name else { usage("missing variant name") };
    VariantCli { variant: parse_variant_arg(cmd, &name, n), n, threads, passes }
}

/// `repro plan <variant-name> [--n N] [--threads T] [--passes SPEC]`:
/// lower one schedule to the plan IR, optionally run a pass pipeline
/// over it, and print the (verified) result.
fn run_plan_command(args: &[String]) {
    let cli = parse_variant_cli("repro plan", args);
    let pipe = parse_passes_arg("repro plan", &cli.passes);
    let size = pdesched_mesh::IntVect::splat(cli.n);
    match pdesched_core::plan_for_optimized(cli.variant, size, cli.threads, &pipe) {
        Ok(plan) => print!("{}", plan.render()),
        Err(e) => {
            eprintln!("repro plan: {e}");
            std::process::exit(2);
        }
    }
}

/// `repro describe <variant-name> [--n N] [--threads T] [--passes SPEC]`:
/// the Section IV prose for one schedule, plus — when a pipeline is
/// given — a per-pass delta table (barriers removed, phases fused,
/// recompute faces before/after) so transformed schedules are
/// inspectable without reading plan dumps.
fn run_describe_command(args: &[String]) {
    let cli = parse_variant_cli("repro describe", args);
    parse_passes_arg("repro describe", &cli.passes); // validate the spec up front
    let d = pdesched_core::describe::describe(cli.variant, cli.n, cli.threads);
    println!("== {} (N={}, {} threads) ==", d.name, cli.n, cli.threads);
    println!("  temporaries:   {}", d.temporaries);
    println!("  locality:      {}", d.locality);
    println!("  parallelism:   {}", d.parallelism);
    println!("  recomputation: {}", d.recomputation);
    if cli.passes.trim().is_empty() {
        return;
    }
    // Apply the pipeline one pass at a time: each prefix is itself a
    // valid (verified) pipeline, so every row of the delta table is an
    // executable plan.
    let size = pdesched_mesh::IntVect::splat(cli.n);
    let mut plan = pdesched_core::plan::lower(cli.variant, size, cli.threads);
    println!("== per-pass deltas ({}) ==", cli.passes);
    println!(
        "  {:<24} {:>10} {:>10} {:>10} {:>18}",
        "pass", "barriers", "phases", "steps", "recompute faces"
    );
    let row = |label: &str, p: &pdesched_core::Plan| {
        println!(
            "  {:<24} {:>10} {:>10} {:>10} {:>18}",
            label,
            p.barrier_count(),
            p.phase_count(),
            p.step_count(),
            p.recompute_faces()
        );
    };
    row("(hand lowering)", &plan);
    for part in cli.passes.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let single = parse_passes_arg("repro describe", part);
        plan = match single.apply(plan) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("repro describe: pass '{part}' failed: {e}");
                std::process::exit(2);
            }
        };
        row(part, &plan);
    }
    let hand = pdesched_core::plan::lower(cli.variant, size, cli.threads);
    println!(
        "  pipeline total: {} barrier(s) removed, {} phase(s) fused away, \
         recompute faces {} -> {}{}",
        hand.barrier_count().saturating_sub(plan.barrier_count()),
        hand.phase_count().saturating_sub(plan.phase_count()),
        hand.recompute_faces(),
        plan.recompute_faces(),
        if plan.interleave > 1 { ", pair-interleaved execution" } else { "" }
    );
}

/// `repro optimize <variant-name> [--n N] [--machine NAME]
/// [--frontier K] [--store PATH]`: the model-driven schedule search.
/// Runs the full pass-pipeline search on the chosen machine (analytic
/// ranking, simulator-confirmed hand-written baseline + discovered
/// frontier), then zooms into the named variant's own candidate slice.
fn run_optimize_command(args: &[String]) {
    let mut name: Option<String> = None;
    let mut n: i32 = 24;
    let mut machine: Option<String> = None;
    let mut frontier_k: usize = 4;
    let mut store = String::from("target/traffic-cache.txt");
    let usage = |msg: &str| -> ! {
        eprintln!("repro optimize: {msg}");
        eprintln!(
            "usage: repro optimize <variant-name> [--n N] [--machine NAME] \
             [--frontier K] [--store PATH]"
        );
        std::process::exit(2);
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                n = it
                    .next()
                    .unwrap_or_else(|| usage("--n needs a box size"))
                    .parse()
                    .unwrap_or_else(|_| usage("--n needs a number"))
            }
            "--machine" => {
                machine = Some(it.next().unwrap_or_else(|| usage("--machine needs a name")).clone())
            }
            "--frontier" => {
                frontier_k = it
                    .next()
                    .unwrap_or_else(|| usage("--frontier needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--frontier needs a number"))
            }
            "--store" => store = it.next().unwrap_or_else(|| usage("--store needs a path")).clone(),
            flag if flag.starts_with("--") => usage(&format!("unknown flag '{flag}'")),
            other if name.is_none() => name = Some(other.to_string()),
            other => usage(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(name) = name else { usage("missing variant name") };
    let variant = parse_variant_arg("repro optimize", &name, n);
    // The three evaluation nodes plus the Section VI-B desktop; default
    // to the desktop (the single-socket machine the pair study models
    // most directly).
    let mut machines = vec![MachineSpec::i5_desktop()];
    machines.extend(MachineSpec::evaluation_nodes());
    let spec = match &machine {
        None => machines[0].clone(),
        Some(m) => {
            let lower = m.to_lowercase();
            match machines.iter().find(|s| s.name.to_lowercase().contains(&lower)) {
                Some(s) => s.clone(),
                None => {
                    eprintln!("repro optimize: no machine matching '{m}'; evaluation nodes:");
                    for s in &machines {
                        eprintln!("  {}", s.name);
                    }
                    std::process::exit(2);
                }
            }
        }
    };
    let cache = TrafficCache::with_store(&store);
    let report = sweep::search_schedules(&spec, n, frontier_k, &cache);
    let pct =
        |bytes: u64, baseline: u64| 100.0 * (bytes as f64 - baseline as f64) / baseline as f64;
    println!(
        "== Pass-pipeline schedule search on {} (N={n}, LLC share {} KiB/thread) ==",
        report.machine,
        report.llc_share / 1024
    );
    println!(
        "{} candidates ranked analytically; simulator-confirmed {} hand-written shapes \
         and a frontier of {}",
        report.candidates_ranked,
        report.handwritten.len(),
        report.frontier.len()
    );
    let best_hand = report.best_handwritten().clone();
    println!(
        "best hand-written: {:<44} {:>12} DRAM B/box",
        best_hand.label(),
        best_hand.traffic.dram_bytes
    );
    println!("discovered frontier (simulator-confirmed):");
    for c in &report.frontier {
        println!(
            "  {:<44} {:>12} DRAM B/box ({:+.1}% vs best hand-written)",
            c.label(),
            c.traffic.dram_bytes,
            pct(c.traffic.dram_bytes, best_hand.traffic.dram_bytes)
        );
    }
    match report.winner() {
        Some(w) if report.beats_handwritten() => println!(
            "verdict: {} beats the best hand-written schedule by {:.1}%",
            w.label(),
            -pct(w.traffic.dram_bytes, best_hand.traffic.dram_bytes)
        ),
        _ => println!("verdict: no discovered schedule beats the hand-written best here"),
    }

    // The named variant's own slice of the search space, confirmed.
    // The pair study dedupes shapes by (category, comp, intra, tile):
    // granularity collapses at one traced thread, so the named variant
    // always maps onto exactly one confirmed shape.
    let hand = report
        .handwritten
        .iter()
        .find(|c| {
            (c.variant.category, c.variant.comp, c.variant.intra, c.variant.tile)
                == (variant.category, variant.comp, variant.intra, variant.tile)
        })
        .expect("every valid shape is confirmed")
        .clone();
    println!("== candidate pipelines for {} ==", variant.name());
    println!("  {:<44} {:>12} DRAM B/box (hand lowering)", hand.label(), hand.traffic.dram_bytes);
    let mut mine = sweep::candidate_pipelines(hand.variant, n, report.llc_share);
    mine.sort_by_key(|c| c.analytic_bytes);
    let hierarchy = spec.hierarchy_for(spec.cores_per_socket);
    let mut best_mine: Option<(String, u64)> = None;
    for cand in mine.iter().take(frontier_k) {
        let pipe = parse_passes_arg("repro optimize", &cand.passes);
        match cache.get_pair(cand.variant, n, &hierarchy, &pipe) {
            Ok(t) => {
                println!(
                    "  {:<44} {:>12} DRAM B/box ({:+.1}% vs its hand lowering)",
                    format!("{} + [{}]", cand.variant.name(), cand.passes),
                    t.dram_bytes,
                    pct(t.dram_bytes, hand.traffic.dram_bytes)
                );
                if best_mine.as_ref().is_none_or(|(_, b)| t.dram_bytes < *b) {
                    best_mine = Some((cand.passes.clone(), t.dram_bytes));
                }
            }
            Err(e) => println!("  {} + [{}]: skipped ({e})", cand.variant.name(), cand.passes),
        }
    }
    if let Some((passes, bytes)) = best_mine {
        if bytes < hand.traffic.dram_bytes {
            println!(
                "best pipeline for this variant: [{passes}] saves {:.1}% of its DRAM traffic",
                -pct(bytes, hand.traffic.dram_bytes)
            );
        } else {
            println!("no pipeline improves this variant here");
        }
    }
}

/// `repro serve`: run the schedule-query service until a signal drains
/// it (exit 10) or the bind fails (exit 16). The bound address goes to
/// stderr as `[repro] serve: listening on ADDR` so scripts launching
/// with `--addr 127.0.0.1:0` can scrape the ephemeral port.
fn run_serve_command(args: &[String]) -> ! {
    fn usage(msg: &str) -> ! {
        eprintln!("repro serve: {msg}");
        eprintln!(
            "usage: repro serve [--addr HOST:PORT] [--store PATH] \
             [--mode simulate|symbolic|hybrid] [--threads N] [--max-inflight N] \
             [--retry-after-ms MS] [--request-deadline SECS] [--point-deadline SECS] \
             [--drain-deadline SECS] [--stale-ok]"
        );
        std::process::exit(2);
    }
    fn secs(value: Option<&String>, flag: &str) -> Duration {
        let v: f64 = value
            .unwrap_or_else(|| usage(&format!("{flag} needs seconds")))
            .parse()
            .unwrap_or_else(|_| usage(&format!("{flag} needs a number of seconds")));
        if !(v > 0.0 && v.is_finite()) {
            usage(&format!("{flag} needs a positive number of seconds"));
        }
        Duration::from_secs_f64(v)
    }
    let mut cfg = pdesched_machine::ServeConfig {
        store: Some(std::path::PathBuf::from("target/traffic-cache.txt")),
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                cfg.addr = it.next().unwrap_or_else(|| usage("--addr needs HOST:PORT")).clone()
            }
            "--store" => {
                cfg.store = Some(it.next().unwrap_or_else(|| usage("--store needs a path")).into())
            }
            "--mode" => {
                cfg.mode = match it.next().map(String::as_str) {
                    Some("simulate") => TrafficMode::Simulate,
                    Some("symbolic") => TrafficMode::Symbolic,
                    Some("hybrid") => TrafficMode::Hybrid,
                    _ => usage("--mode needs simulate|symbolic|hybrid"),
                }
            }
            "--threads" => {
                cfg.engine_threads = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs a number"))
            }
            "--max-inflight" => {
                cfg.max_inflight = it
                    .next()
                    .unwrap_or_else(|| usage("--max-inflight needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--max-inflight needs a number"));
                if cfg.max_inflight == 0 {
                    usage("--max-inflight needs at least 1");
                }
            }
            "--retry-after-ms" => {
                let ms: u64 = it
                    .next()
                    .unwrap_or_else(|| usage("--retry-after-ms needs milliseconds"))
                    .parse()
                    .unwrap_or_else(|_| usage("--retry-after-ms needs a number"));
                cfg.retry_after = Duration::from_millis(ms);
            }
            "--request-deadline" => {
                cfg.request_deadline = Some(secs(it.next(), "--request-deadline"))
            }
            "--point-deadline" => {
                cfg.budget.point_deadline = Some(secs(it.next(), "--point-deadline"))
            }
            "--drain-deadline" => cfg.drain_deadline = secs(it.next(), "--drain-deadline"),
            "--stale-ok" => cfg.stale_ok = true,
            other => usage(&format!("unexpected argument '{other}'")),
        }
    }
    // One EnvFault drives both fault surfaces: the request path
    // (drop-req/hang-req via ServeHook) and the measurement/store path
    // (panic-sim/hang-sim/fail-append via FaultHook).
    if let Some(fault) = env_fault() {
        let fault = std::sync::Arc::new(fault);
        cfg.hook = Some(fault.clone() as _);
        cfg.store_fault = Some(fault as _);
    }
    // Install the latch before binding so a supervisor that signals
    // immediately after spawn still gets an orderly drain.
    signals::install();
    let server = match pdesched_machine::Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro serve: cannot start: {e}");
            std::process::exit(EXIT_SERVE);
        }
    };
    eprintln!("[repro] serve: listening on {}", server.local_addr());
    if server.cache().store_read_only() {
        eprintln!("[repro] serve: store lock held elsewhere; answering from snapshots (degraded)");
    }
    loop {
        if let Some(sig) = signals::pending() {
            eprintln!("[repro] serve: {sig}: draining");
            let clean = server.drain();
            let stats = server.stats();
            drop(server);
            eprintln!(
                "[repro] serve: drained {}; {} requests ({} rejected, {} coalesced)",
                if clean { "cleanly" } else { "by force" },
                stats.requests,
                stats.rejected,
                stats.coalesced
            );
            std::process::exit(EXIT_SIGNAL);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Everything a `--shard-worker` invocation needs (forwarded by the
/// coordinator's spawn command line).
struct ShardWorkerCli<'a> {
    store: &'a str,
    shards: usize,
    worker_index: usize,
    wanted: &'a [String],
    fast: bool,
    threads: usize,
    point_deadline: Option<Duration>,
    heartbeat_stale: Duration,
    mode: TrafficMode,
}

/// One fabric worker process (see the module docs and DESIGN.md §12):
/// recompute the same deterministic partition as the coordinator, then
/// run the shard-claim loop until every shard is complete or a
/// cancellation arrives — via signal, or via the `<store>.fabric`
/// control file the coordinator writes (polled by `cancel::watch`).
/// Returns the process exit code.
fn run_shard_worker(cli: &ShardWorkerCli) -> i32 {
    let token = CancelToken::new();
    signals::install();
    {
        let token = token.clone();
        std::thread::spawn(move || loop {
            if let Some(sig) = signals::pending() {
                token.trip(&format!("signal {sig}"));
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    let store_path = std::path::PathBuf::from(cli.store);
    let _watch = cancel::watch(&token, Duration::from_millis(50), {
        let store = store_path.clone();
        move || coordinator::read_cancel(&store)
    });
    let _ambient = cancel::set_current(Some(token.clone()));

    let machines = MachineSpec::evaluation_nodes();
    let big_n = if cli.fast { 64 } else { 128 };
    // Same todo set as the coordinator: fabric points minus whatever the
    // canonical store already holds. Opening the canonical store here
    // degrades to read-only (the coordinator owns its lock), which is
    // exactly what a contains-filter needs; the canonical store cannot
    // change while the fabric runs, so every process filters against
    // the same snapshot and computes the same partition.
    let todo: Vec<SimPoint> = {
        let canon = TrafficCache::with_store(&store_path).with_mode(cli.mode);
        fabric_points(cli.wanted, &machines, big_n)
            .into_iter()
            .filter(|p| !canon.contains(p.variant, p.n, &p.configs))
            .collect()
    };
    let parts = shard::partition(&todo, cli.shards);
    let expected = shard::expected_keys(&todo, cli.shards);
    let beat = (cli.heartbeat_stale / 4).max(Duration::from_millis(25));
    let engine = SweepEngine::new(cli.threads)
        .with_progress(false)
        .with_budget(SweepBudget {
            point_deadline: cli.point_deadline,
            sweep_deadline: None,
            max_retries: 2,
            backoff: Duration::from_millis(50),
        })
        .with_cancel_token(token.clone())
        .with_journal_heartbeat(Some(beat));
    let hook: Option<std::sync::Arc<dyn FaultHook>> =
        env_fault().map(|f| std::sync::Arc::new(f) as _);
    let mode = cli.mode;
    let cfg = WorkerConfig {
        store: store_path,
        shards: cli.shards,
        worker_index: cli.worker_index,
        poll: Duration::from_millis(50),
    };
    let outcome = coordinator::run_worker(&cfg, &parts, &expected, &engine, &token, |c| {
        let c = c.with_mode(mode);
        match &hook {
            Some(h) => c.with_fault_hook(h.clone()),
            None => c,
        }
    });
    let failures: usize =
        outcome.reports.iter().map(|(_, r)| r.failed.len() + r.timed_out.len()).sum();
    eprintln!(
        "[repro] shard worker {}: {} shard claim(s), {} failure(s)/timeout(s){}",
        cli.worker_index,
        outcome.shards_swept,
        failures,
        outcome.cancelled.as_deref().map(|r| format!(", cancelled: {r}")).unwrap_or_default()
    );
    match &outcome.cancelled {
        Some(r) if r.starts_with("signal ") => EXIT_SIGNAL,
        Some(_) => EXIT_DEADLINE,
        None if failures > 0 => EXIT_POINT_FAILURES,
        None => 0,
    }
}

/// The union of simulation points the requested targets will prewarm —
/// the fabric's work list. Must agree between the coordinator and every
/// worker (it is recomputed in each process), so it depends only on the
/// command line. Targets with no measurement phase (fig1, table1,
/// ablation, plandump) contribute nothing. Invalid points are dropped
/// up front: the engine would skip them, so the fabric must not expect
/// their keys.
fn fabric_points(wanted: &[String], machines: &[MachineSpec], big_n: i32) -> Vec<SimPoint> {
    let mut pts: Vec<SimPoint> = Vec::new();
    for w in wanted {
        match w.as_str() {
            "fig2" | "fig3" | "fig4" => {
                let spec = &machines[w[3..].parse::<usize>().unwrap() - 2];
                pts.extend(figures::figure234_points(spec, big_n));
            }
            "fig9" => pts.extend(figures::figure9_points()),
            "fig10" | "fig11" | "fig12" => {
                let spec = &machines[w[3..].parse::<usize>().unwrap() - 10];
                pts.extend(figures::figure1012_points(spec));
            }
            "bandwidth" => pts.extend(figures::bandwidth_points()),
            "sweep" => {
                for spec in machines {
                    pts.extend(sweep::top_measured_points(spec, 16, 3));
                }
            }
            "faultcheck" => pts.extend(faultcheck_points()),
            _ => {}
        }
    }
    pts.retain(|p| p.variant.validate_for_box(p.n).is_ok());
    pts
}

/// Write plan dumps to `out_dir` (default `target/plan-dumps/`, the CI
/// artifact) and print them: the seven named Figure 10 schedules, or a
/// single `--variant` by display name, optionally transformed by a
/// `--passes` pipeline (the pass key lands in the file name, so
/// transformed dumps never clobber the hand ones).
fn print_plandump(spec: &MachineSpec, n: i32, out_dir: &str, passes: &str, only: Option<&str>) {
    let pipe = parse_passes_arg("repro plandump", passes);
    let dir = std::path::Path::new(out_dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {out_dir}: {e}"));
    let schedules: Vec<(String, Variant)> = match only {
        Some(name) => {
            let v = parse_variant_arg("repro plandump", name, n);
            vec![(v.name(), v)]
        }
        None => figures::n128_variants(spec).into_iter().map(|(s, v)| (s.to_string(), v)).collect(),
    };
    let suffix = if pipe.is_empty() { String::new() } else { format!(", passes [{}]", pipe.key()) };
    println!("== Lowered plans ({}, N={n}{suffix}) ==", spec.name);
    for (name, variant) in schedules {
        let threads =
            if variant.gran == pdesched_core::Granularity::WithinBox { spec.cores() } else { 1 };
        let plan = match pdesched_core::plan_for_optimized(
            variant,
            pdesched_mesh::IntVect::splat(n),
            threads,
            &pipe,
        ) {
            Ok(p) => p,
            Err(e) => {
                println!("-- {name}: pipeline does not apply: {e} --");
                continue;
            }
        };
        let text = plan.render();
        let stem = if pipe.is_empty() { name.clone() } else { format!("{name}__{}", pipe.key()) };
        let slug: String = stem
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.txt"));
        std::fs::write(&path, &text).expect("write plan dump");
        println!("-- {name} -> {} --", path.display());
        print!("{text}");
    }
}

/// Everything a supervised run accumulates besides stages and figures:
/// per-point failures/timeouts (with their kind for `--json`) and the
/// journal's account of the interrupted sweep this run resumed.
struct RunLog {
    failures: Vec<(String, &'static str, PointFailure)>,
    resumed_from: Option<PriorSweep>,
    /// Largest engine-thread grant seen since the current stage began
    /// (reset by the stage loop, raised by each `prewarm`).
    stage_engine_threads: usize,
}

/// Prewarm one target's simulation points, narrating to stderr and
/// collecting per-point failures and timeouts (the target still renders
/// from whatever did complete). Returns `false` when the sweep was
/// cancelled mid-flight: the caller skips rendering, because rendering
/// would re-measure the missing points serially.
fn prewarm(
    engine: &SweepEngine,
    cache: &TrafficCache,
    target: &str,
    points: Vec<pdesched_machine::SimPoint>,
    log: &mut RunLog,
) -> bool {
    let r = engine.prewarm(cache, &points);
    log.stage_engine_threads = log.stage_engine_threads.max(r.engine_threads);
    if let (None, Some(prior)) = (&log.resumed_from, &r.resumed_from) {
        eprintln!(
            "[repro] {target}: resuming an interrupted sweep ({} points planned, \
             {} failed, {} timed out{})",
            prior.total,
            prior.failed,
            prior.timed_out,
            prior.cancelled.as_deref().map(|c| format!(", cancelled: {c}")).unwrap_or_default()
        );
        log.resumed_from = Some(prior.clone());
    }
    if r.measured > 0 || !r.failed.is_empty() || !r.timed_out.is_empty() {
        eprintln!(
            "[repro] {target}: measured {} of {} unique points in {:.1}s \
             ({:.2} points/s) on {} threads{}{}{}",
            r.measured,
            r.unique,
            r.seconds,
            r.points_per_sec,
            engine.nthreads(),
            if r.engine_threads > 1 {
                format!(" ({}x engine threads per point)", r.engine_threads)
            } else {
                String::new()
            },
            if r.failed.is_empty() {
                String::new()
            } else {
                format!(", {} FAILED", r.failed.len())
            },
            if r.timed_out.is_empty() {
                String::new()
            } else {
                format!(", {} TIMED OUT", r.timed_out.len())
            }
        );
    } else {
        eprintln!("[repro] {target}: all {} points already cached", r.unique);
    }
    log.failures.extend(r.failed.into_iter().map(|f| (target.to_string(), "panic", f)));
    log.failures.extend(r.timed_out.into_iter().map(|f| (target.to_string(), "timeout", f)));
    if let Some(reason) = &r.cancelled {
        eprintln!(
            "[repro] {target}: sweep cancelled ({reason}), {} points unmeasured",
            r.remaining
        );
        return false;
    }
    true
}

/// The `faultcheck` target's simulation points — shared with
/// [`fabric_points`] so a sharded faultcheck expects exactly the keys a
/// serial one would store.
fn faultcheck_points() -> Vec<SimPoint> {
    let configs = vec![CacheConfig::new(8 * 1024, 4), CacheConfig::new(64 * 1024, 8)];
    [Variant::baseline(), Variant::shift_fuse()]
        .iter()
        .map(|&v| SimPoint { variant: v, n: 8, configs: configs.clone() })
        .collect()
}

/// Tiny deterministic fault-tolerance check (seconds, not minutes):
/// two cheap simulation points over a small hierarchy, meant to be run
/// with `REPRO_FAULT` set so an injected panic or append failure flows
/// through the engine, the store, and the `--json` report end to end.
fn print_faultcheck(cache: &TrafficCache, engine: &SweepEngine, log: &mut RunLog) {
    let points = faultcheck_points();
    prewarm(engine, cache, "faultcheck", points.clone(), log);
    println!("== faultcheck: deterministic fault-injection probe ==");
    for p in &points {
        let status = if cache.contains(p.variant, p.n, &p.configs) { "ok" } else { "FAILED" };
        println!("  {:<34} n={:<4} {status}", p.variant.name(), p.n);
    }
}

use pdesched_bench::json_str;

/// Serialize stages + figures + cache counters as JSON (no external
/// dependencies, so the writer is by hand; the shape is stable,
/// versioned by `schema_version`, and documented in the README).
#[allow(clippy::too_many_arguments)]
fn render_json(
    stages: &[Stage],
    figs: &[figures::Figure],
    cache: &TrafficCache,
    fast: bool,
    threads: usize,
    log: &RunLog,
    fabric: Option<&FabricReport>,
    interrupted: Option<(&str, i32)>,
) -> String {
    use std::fmt::Write;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": 4,");
    let _ = writeln!(j, "  \"fast\": {fast},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"mode\": {},", json_str(cache.mode().tag()));
    // Claim-rate observability: how many of this run's measured points
    // the symbolic engine claimed vs fell back to the simulator (both
    // zero under `--mode simulate`, where no claiming happens).
    {
        let s = cache.stats();
        let _ = writeln!(
            j,
            "  \"traffic\": {{\"claimed_points\": {}, \"fallback_points\": {}}},",
            s.claimed_points, s.fallback_points
        );
    }
    match interrupted {
        Some((reason, code)) => {
            let _ = writeln!(
                j,
                "  \"interrupted\": {{\"reason\": {}, \"exit_code\": {code}}},",
                json_str(reason)
            );
        }
        None => {
            let _ = writeln!(j, "  \"interrupted\": null,");
        }
    }
    match &log.resumed_from {
        Some(p) => {
            let _ = writeln!(
                j,
                "  \"resumed_from\": {{\"total\": {}, \"failed\": {}, \"timed_out\": {}, \
                 \"cancelled\": {}}},",
                p.total,
                p.failed,
                p.timed_out,
                p.cancelled.as_deref().map(json_str).unwrap_or_else(|| "null".into())
            );
        }
        None => {
            let _ = writeln!(j, "  \"resumed_from\": null,");
        }
    }
    match fabric {
        Some(f) => {
            let _ = writeln!(j, "  \"fabric\": {{");
            let _ = writeln!(j, "    \"shards\": {},", f.shards);
            let _ = writeln!(j, "    \"workers\": {},", f.workers);
            let _ = writeln!(j, "    \"launches\": {},", f.launches);
            let _ = writeln!(j, "    \"reclaims\": {},", f.reclaims);
            let _ = writeln!(j, "    \"kills\": {},", f.kills);
            let _ = writeln!(j, "    \"stalled\": {},", f.stalled);
            let _ = writeln!(
                j,
                "    \"cancelled\": {},",
                f.cancelled.as_deref().map(json_str).unwrap_or_else(|| "null".into())
            );
            let exits: Vec<String> = f.worker_exits.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(j, "    \"worker_exits\": [{}],", exits.join(", "));
            match &f.merge {
                Some(m) => {
                    let _ = writeln!(
                        j,
                        "    \"merge\": {{\"entries\": {}, \"duplicates\": {}, \
                         \"conflicts\": {}, \"corrupt_lines\": {}}},",
                        m.entries,
                        m.duplicates,
                        m.conflicts.len(),
                        m.corrupt_lines
                    );
                }
                None => {
                    let _ = writeln!(j, "    \"merge\": null,");
                }
            }
            let _ = writeln!(j, "    \"shard_status\": [");
            for (i, s) in f.shard_status.iter().enumerate() {
                let comma = if i + 1 < f.shard_status.len() { "," } else { "" };
                let _ = writeln!(
                    j,
                    "      {{\"shard\": {}, \"expected\": {}, \"present\": {}, \
                     \"done\": {}, \"reclaims\": {}, \"max_heartbeat_gap_ms\": {}}}{comma}",
                    s.shard, s.expected, s.present, s.done, s.reclaims, s.max_heartbeat_gap_ms
                );
            }
            let _ = writeln!(j, "    ]");
            let _ = writeln!(j, "  }},");
        }
        None => {
            let _ = writeln!(j, "  \"fabric\": null,");
        }
    }
    let s = cache.stats();
    let _ = writeln!(
        j,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},",
        s.hits,
        s.misses,
        cache.len()
    );
    let (ph, pm, pe) = pdesched_core::plan::cache_stats();
    let _ =
        writeln!(j, "  \"plan_cache\": {{\"hits\": {ph}, \"misses\": {pm}, \"entries\": {pe}}},");
    let _ = writeln!(
        j,
        "  \"store\": {{\"path\": {}, \"read_only\": {}, \"corrupt_lines\": {}, \"store_errors\": {}}},",
        cache
            .store_path()
            .map(|p| json_str(&p.display().to_string()))
            .unwrap_or_else(|| "null".into()),
        cache.store_read_only(),
        s.corrupt_lines,
        s.store_errors
    );
    let _ = writeln!(j, "  \"failures\": [");
    for (i, (stage, kind, f)) in log.failures.iter().enumerate() {
        let comma = if i + 1 < log.failures.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"stage\": {}, \"kind\": {}, \"variant\": {}, \"n\": {}, \
             \"error\": {}}}{comma}",
            json_str(stage),
            json_str(kind),
            json_str(&f.variant),
            f.n,
            json_str(&f.error)
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"stages\": [");
    for (i, st) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"target\": {}, \"seconds\": {:.6}, \"hits\": {}, \"misses\": {}, \
             \"engine_threads\": {}}}{comma}",
            json_str(&st.name),
            st.seconds,
            st.hits,
            st.misses,
            st.engine_threads
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"figures\": [");
    for (i, f) in figs.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"id\": {},", json_str(&f.id));
        let _ = writeln!(j, "      \"title\": {},", json_str(&f.title));
        let _ = writeln!(j, "      \"xlabel\": {},", json_str(&f.xlabel));
        let _ = writeln!(j, "      \"ylabel\": {},", json_str(&f.ylabel));
        let _ = writeln!(j, "      \"series\": [");
        for (k, srs) in f.series.iter().enumerate() {
            let pts: Vec<String> = srs.points.iter().map(|(x, y)| format!("[{x}, {y}]")).collect();
            let comma = if k + 1 < f.series.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        {{\"label\": {}, \"points\": [{}]}}{comma}",
                json_str(&srs.label),
                pts.join(", ")
            );
        }
        let _ = writeln!(j, "      ]");
        let comma = if i + 1 < figs.len() { "," } else { "" };
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn print_table1() {
    // Table I for the paper's parameters: C = 5 components, P threads,
    // tile size T. Printed for N = 128, T = 16, P = 24 alongside this
    // implementation's exact (measured-equal) formulas.
    let (n, t, p) = (128, 16, 24);
    println!("== Table I: temporary data per schedule (N={n}, T={t}, C=5, P={p}) ==");
    println!(
        "{:<34} {:>16} {:>16} {:>18} {:>18}",
        "Schedule", "paper flux", "paper velocity", "ours flux (CLO)", "ours velocity"
    );
    let rows: [(&str, Category, Variant); 4] = [
        ("Series of Loops", Category::Series, Variant::baseline()),
        ("Loops shifted and fused", Category::ShiftFuse, Variant::shift_fuse()),
        (
            "Loops shifted, fused, tiled",
            Category::BlockedWavefront,
            Variant::blocked_wavefront(pdesched_core::CompLoop::Outside, t),
        ),
        (
            "Shifted, fused, overlapping tiles",
            Category::OverlappedTile,
            Variant::overlapped(
                pdesched_core::IntraTile::ShiftFuse,
                t,
                pdesched_core::Granularity::WithinBox,
            ),
        ),
    ];
    for (label, cat, variant) in rows {
        let paper = paper_formula(cat, n, t, p);
        let ours = expected(variant, n, p);
        println!(
            "{:<34} {:>16} {:>16} {:>18} {:>18}",
            label, paper.flux_f64, paper.vel_f64, ours.flux_f64, ours.vel_f64
        );
    }
}

/// Design-choice ablations (analytic-model predictions, instant): the
/// tile-size sweep the paper reports ("tile sizes of 8 and 16 were the
/// most efficient") and the hierarchical-OT extension, on the Ivy
/// Bridge node at full threads, N = 128.
fn print_ablation() {
    use pdesched_core::{Granularity, IntraTile};
    use pdesched_machine::model::predict_time_analytic;
    use pdesched_machine::Workload;
    let spec = MachineSpec::ivy_bridge_node();
    let t = spec.cores();
    let wl = Workload::paper(128);
    println!("== Ablations (analytic model, {} @ {t} threads, N=128) ==", spec.name);
    println!("{:<34} {:>12}", "schedule", "pred. time");
    let mut rows: Vec<Variant> = Vec::new();
    for tile in [4, 8, 16, 32] {
        rows.push(Variant::overlapped(IntraTile::ShiftFuse, tile, Granularity::WithinBox));
    }
    for tile in [8, 16, 32] {
        rows.push(Variant::hierarchical(tile, 4, Granularity::WithinBox));
    }
    rows.push(Variant::blocked_wavefront(pdesched_core::CompLoop::Inside, 8));
    rows.push(Variant::shift_fuse());
    rows.push(Variant::baseline());
    for v in rows {
        let p = predict_time_analytic(&spec, v, wl, t);
        println!("{:<34} {:>10.4}s", v.name(), p.seconds);
    }
}

/// Full design-space ranking per machine: the analytic model screens
/// every candidate instantly, then the simulator-backed model confirms
/// the N=16 short list. The confirmation points go through the
/// supervised `prewarm` helper so interruption, timeouts, and resume
/// are narrated and land in `--json` like every other target; a
/// cancelled prewarm stops the sweep (rendering would re-measure the
/// missing points serially).
fn print_sweep(cache: &TrafficCache, engine: &SweepEngine, log: &mut RunLog) {
    for spec in MachineSpec::evaluation_nodes() {
        for n in [16, 128] {
            let ranked = sweep::rank_all(&spec, n);
            println!(
                "== Top schedules on {} for N={n} ({} candidates, {} threads) ==",
                spec.name,
                ranked.len(),
                spec.cores()
            );
            for r in ranked.iter().take(5) {
                println!("  {:<36} {:>10.4}s", r.variant.name(), r.prediction.seconds);
            }
        }
        if !prewarm(engine, cache, "sweep", sweep::top_measured_points(&spec, 16, 3), log) {
            return;
        }
        let confirmed = sweep::rank_top_measured(&spec, 16, 3, cache, engine);
        println!("-- simulator-confirmed top 3 for N=16 --");
        for r in &confirmed {
            println!("  {:<36} {:>10.4}s", r.variant.name(), r.prediction.seconds);
        }
    }
}

fn print_bandwidth(cache: &TrafficCache) {
    println!("== Section VI-B: VTune bandwidth observations on the i5-3570K desktop ==");
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>12}",
        "Schedule", "N", "Threads", "model GB/s", "paper GB/s"
    );
    for row in figures::bandwidth_experiment(cache) {
        println!(
            "{:<12} {:>6} {:>8} {:>16.1} {:>12}",
            row.schedule,
            row.n,
            row.threads,
            row.predicted_gbs,
            row.paper_gbs.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
        );
    }
}
