//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fast] [--store PATH] [--threads N] [--json PATH] \
//!       [--deadline SECS] [--point-deadline SECS] \
//!       [fig1|fig2|fig3|fig4|table1|fig9|fig10|fig11|fig12|bandwidth|ablation|sweep|plandump|faultcheck|all]...
//! repro plan <variant-name> [--n N] [--threads T]
//! ```
//!
//! `repro plan` prints the lowered schedule IR (`pdesched_core::plan`)
//! for one variant — its buffers, phases, barriers, and recompute
//! regions — for an `N`^3 box (default 32) at `T` threads (default 8).
//! Variant names are the display names from the extended enumeration,
//! e.g. `repro plan 'Blocked WF-CLI-4: P<Box'`. The `plandump` target
//! writes the same dumps for the seven named Figure 10 schedules to
//! `target/plan-dumps/` (CI uploads them as an artifact).
//!
//! * `--store PATH` — persist/reuse cache-simulator traffic measurements
//!   (default `target/traffic-cache.txt`). The store is versioned: a
//!   schema change discards stale entries automatically. The first full
//!   run pays the trace simulation; subsequent runs are instant (the
//!   per-stage `hits/misses` line proves no re-simulation happened).
//! * `--threads N` — measurement workers for the parallel sweep engine
//!   (default: all available cores). Parallelism never changes output:
//!   measurements are deterministic and figure generation is serial.
//! * `--json PATH` — also write every figure's series plus per-stage
//!   wall time and cache counters as JSON (e.g. `BENCH_sweep.json`).
//! * `--fast` — substitute 64^3 for the 128^3 box in the scaling
//!   figures (roughly 8x cheaper traces; shapes are preserved but the
//!   cache-residency crossover shifts).
//!
//! Fault tolerance: a sim point whose measurement panics is recorded as
//! failed and the remaining points (and targets) still complete; the
//! failure list and the store's health counters (corrupt/torn lines
//! recovered at load, failed appends) are part of `--json`. The store
//! accepts a single writer at a time — a second concurrent `repro` run
//! degrades to read-only memoization instead of interleaving appends.
//! The `faultcheck` target plus the `REPRO_FAULT` environment variable
//! (`panic-sim:K`, `hang-sim:K`, or `fail-append:N`, 0-based) exercise
//! this machinery deterministically end to end; CI runs it.
//!
//! Supervision (see DESIGN.md "Failure model"): SIGINT/SIGTERM trip a
//! cancel token, the running sweep stops at its next checkpoint, the
//! store is flushed, and a partial `--json` report is written with an
//! `"interrupted"` section — re-running the same command resumes from
//! the store and finishes bit-identical to an uninterrupted run.
//! `--deadline SECS` bounds the whole run the same way;
//! `--point-deadline SECS` kills individual hung measurements without
//! aborting the sweep. Exit codes: 0 complete, 10 interrupted by
//! signal, 11 deadline exceeded, 12 point failures/timeouts,
//! 13 store was read-only (lock held by another repro).

use pdesched_bench::render_figure;
use pdesched_cachesim::CacheConfig;
use pdesched_core::storage::{expected, paper_formula};
use pdesched_core::{Category, Variant};
use pdesched_machine::{figures, sweep};
use pdesched_machine::{
    FaultHook, MachineSpec, PointFailure, PriorSweep, SimPoint, SweepBudget, SweepEngine,
    TrafficCache, TrafficMode,
};
use pdesched_par::cancel::{self, CancelToken, Cancelled};
use std::time::Duration;

/// Exit-code taxonomy (documented in README and DESIGN.md): distinct
/// codes so a supervisor shelling out to `repro` can tell an orderly
/// interruption from a degraded-but-finished run.
const EXIT_SIGNAL: i32 = 10;
const EXIT_DEADLINE: i32 = 11;
const EXIT_POINT_FAILURES: i32 = 12;
const EXIT_STORE_READ_ONLY: i32 = 13;

/// Wall time and cache activity of one regenerated target.
struct Stage {
    name: String,
    seconds: f64,
    hits: u64,
    misses: u64,
}

/// Fault injection requested via `REPRO_FAULT` (for the deterministic
/// end-to-end robustness tests; see module docs).
struct EnvFault {
    panic_sim: Option<u64>,
    hang_sim: Option<u64>,
    fail_append_every: Option<u64>,
}

impl FaultHook for EnvFault {
    fn before_simulation(&self, sim_index: u64, _key: &str) {
        if self.hang_sim == Some(sim_index) {
            eprintln!("[repro] injected fault (REPRO_FAULT): hanging simulation {sim_index}");
            // Wedge until cancelled (per-point deadline or signal); the
            // hard cap keeps an unsupervised run from hanging forever.
            let t0 = std::time::Instant::now();
            while !cancel::current_is_tripped() && t0.elapsed() < Duration::from_secs(60) {
                std::thread::sleep(Duration::from_millis(1));
            }
            cancel::check_current();
        }
        if self.panic_sim == Some(sim_index) {
            panic!("injected fault (REPRO_FAULT): panic on simulation {sim_index}");
        }
    }
    fn fail_append(&self, append_index: u64) -> bool {
        self.fail_append_every.is_some_and(|n| n != 0 && (append_index + 1).is_multiple_of(n))
    }
}

/// Parse `REPRO_FAULT` (`panic-sim:K` | `hang-sim:K` | `fail-append:N`).
fn env_fault() -> Option<EnvFault> {
    let spec = std::env::var("REPRO_FAULT").ok()?;
    let mut fault = EnvFault { panic_sim: None, hang_sim: None, fail_append_every: None };
    for part in spec.split(',') {
        match part.split_once(':').and_then(|(k, v)| Some((k, v.parse::<u64>().ok()?))) {
            Some(("panic-sim", k)) => fault.panic_sim = Some(k),
            Some(("hang-sim", k)) => fault.hang_sim = Some(k),
            Some(("fail-append", n)) => fault.fail_append_every = Some(n),
            _ => {
                eprintln!("repro: ignoring unrecognized REPRO_FAULT part '{part}'");
            }
        }
    }
    Some(fault)
}

/// Async-signal-safe SIGINT/SIGTERM latch. The handler only stores the
/// signal number; a monitor thread polls the latch and trips the run's
/// cancel token, so all actual unwinding happens on normal threads.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicI32, Ordering};

    static PENDING: AtomicI32 = AtomicI32::new(0);

    extern "C" fn on_signal(signum: i32) {
        PENDING.store(signum, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn pending() -> Option<&'static str> {
        match PENDING.load(Ordering::SeqCst) {
            2 => Some("SIGINT"),
            15 => Some("SIGTERM"),
            _ => None,
        }
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn pending() -> Option<&'static str> {
        None
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("plan") {
        run_plan_command(&args[1..]);
        return;
    }
    let mut store = String::from("target/traffic-cache.txt");
    let mut json: Option<String> = None;
    let mut fast = false;
    let mut threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut deadline: Option<Duration> = None;
    let mut point_deadline: Option<Duration> = None;
    let mut mode = TrafficMode::Simulate;
    let mut wanted: Vec<String> = Vec::new();
    fn usage(msg: &str) -> ! {
        eprintln!("repro: {msg}");
        eprintln!(
            "usage: repro [--fast] [--store PATH] [--threads N] [--json PATH] \
             [--mode simulate|symbolic|hybrid] \
             [--deadline SECS] [--point-deadline SECS] [TARGET]..."
        );
        std::process::exit(2);
    }
    fn secs_flag(value: Option<String>, flag: &str) -> Duration {
        let v: f64 = value
            .unwrap_or_else(|| usage(&format!("{flag} needs seconds")))
            .parse()
            .unwrap_or_else(|_| usage(&format!("{flag} needs a number of seconds")));
        if !(v > 0.0 && v.is_finite()) {
            usage(&format!("{flag} needs a positive number of seconds"));
        }
        Duration::from_secs_f64(v)
    }
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--store" => store = it.next().unwrap_or_else(|| usage("--store needs a path")),
            "--json" => json = Some(it.next().unwrap_or_else(|| usage("--json needs a path"))),
            "--threads" => {
                threads = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs a number"))
            }
            "--deadline" => deadline = Some(secs_flag(it.next(), "--deadline")),
            "--point-deadline" => point_deadline = Some(secs_flag(it.next(), "--point-deadline")),
            "--mode" => {
                mode = match it.next().as_deref() {
                    Some("simulate" | "sim") => TrafficMode::Simulate,
                    Some("symbolic" | "sym") => TrafficMode::Symbolic,
                    Some("hybrid" | "hyb") => TrafficMode::Hybrid,
                    _ => usage("--mode needs one of simulate|symbolic|hybrid"),
                }
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag '{flag}'")),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig1",
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "bandwidth",
            "ablation",
            "sweep",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut cache = TrafficCache::with_store(&store).with_mode(mode);
    if let Some(fault) = env_fault() {
        eprintln!("[repro] REPRO_FAULT set: deterministic fault injection armed");
        cache = cache.with_fault_hook(std::sync::Arc::new(fault));
    }

    // Supervision: one token for the whole run. Tripping it — from the
    // signal latch, the run deadline, or anything else — stops the
    // running sweep at its next checkpoint; the rest of main then
    // flushes the store, reports, and exits with the documented code.
    let token = CancelToken::new();
    signals::install();
    {
        let token = token.clone();
        let t0 = std::time::Instant::now();
        std::thread::spawn(move || loop {
            if let Some(sig) = signals::pending() {
                token.trip(&format!("signal {sig}"));
                return;
            }
            if let Some(d) = deadline {
                if t0.elapsed() >= d {
                    token.trip(&format!("deadline {:.1}s exceeded", d.as_secs_f64()));
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    // Ambient token on the main thread: serial measurement paths (a
    // figure generator filling a hole in the cache) also stop at plan
    // step-phase checkpoints; the resulting `Cancelled` unwind is caught
    // around the stage loop below.
    let _ambient = cancel::set_current(Some(token.clone()));

    let engine = SweepEngine::new(threads)
        .with_progress(true)
        .with_budget(SweepBudget {
            point_deadline,
            sweep_deadline: None, // the monitor thread owns the run deadline
            max_retries: 2,
            backoff: Duration::from_millis(50),
        })
        .with_cancel_token(token.clone());
    let machines = MachineSpec::evaluation_nodes();
    let big_n = if fast { 64 } else { 128 };
    if fast {
        eprintln!("[repro] --fast: using 64^3 in place of 128^3 (shape-preserving, cheaper)");
    }
    eprintln!(
        "[repro] store {store} ({} entries{}), {} measurement threads",
        cache.len(),
        if cache.store_read_only() {
            ", READ-ONLY: another live repro holds the store lock"
        } else {
            ""
        },
        engine.nthreads()
    );
    let loaded = cache.stats();
    if loaded.corrupt_lines > 0 {
        eprintln!(
            "[repro] store recovery: {} corrupt/torn line(s) quarantined to {store}.quarantine",
            loaded.corrupt_lines
        );
    }

    let mut stages: Vec<Stage> = Vec::new();
    let mut json_figures: Vec<figures::Figure> = Vec::new();
    let mut log = RunLog { failures: Vec::new(), resumed_from: None };
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for w in &wanted {
            if token.is_tripped() {
                // Cancelled between stages: remaining targets are left
                // for the resume run.
                break;
            }
            let t0 = std::time::Instant::now();
            let before = cache.stats();
            let mut fig: Option<figures::Figure> = None;
            match w.as_str() {
                "fig1" => fig = Some(figures::figure1()),
                "table1" => print_table1(),
                "fig2" | "fig3" | "fig4" => {
                    let spec = &machines[w[3..].parse::<usize>().unwrap() - 2];
                    if prewarm(&engine, &cache, w, figures::figure234_points(spec, big_n), &mut log)
                    {
                        fig = Some(figures::figure234_sized(spec, &cache, w, big_n));
                    }
                }
                "fig9" => {
                    if prewarm(&engine, &cache, w, figures::figure9_points(), &mut log) {
                        fig = Some(figures::figure9(&cache));
                    }
                }
                "fig10" | "fig11" | "fig12" => {
                    let spec = &machines[w[3..].parse::<usize>().unwrap() - 10];
                    if prewarm(&engine, &cache, w, figures::figure1012_points(spec), &mut log) {
                        fig = Some(figures::figure1012(spec, &cache, w));
                    }
                }
                "bandwidth" => {
                    if prewarm(&engine, &cache, w, figures::bandwidth_points(), &mut log) {
                        print_bandwidth(&cache);
                    }
                }
                "plandump" => print_plandump(&machines[0], big_n),
                "ablation" => print_ablation(),
                "sweep" => print_sweep(&cache, &engine, &mut log),
                "faultcheck" => print_faultcheck(&cache, &engine, &mut log),
                other => {
                    eprintln!("[repro] unknown target '{other}'");
                    continue;
                }
            }
            if let Some(f) = fig {
                print!("{}", render_figure(&f));
                json_figures.push(f);
            }
            let s = cache.stats();
            let stage = Stage {
                name: w.clone(),
                seconds: t0.elapsed().as_secs_f64(),
                hits: s.hits - before.hits,
                misses: s.misses - before.misses,
            };
            eprintln!(
                "[repro] {w} done in {:.1?} ({} hits / {} misses, {} traces cached)",
                t0.elapsed(),
                stage.hits,
                stage.misses,
                cache.len()
            );
            stages.push(stage);
        }
    }));
    let interrupted: Option<String> = match run {
        // A `Cancelled` unwind from a serial measurement checkpoint on
        // the main thread ends the run the same way a between-stage
        // cancellation does; any other panic is a real bug.
        Err(payload) => match payload.downcast::<Cancelled>() {
            Ok(c) => Some(c.reason),
            Err(other) => std::panic::resume_unwind(other),
        },
        Ok(()) => token.is_tripped().then(|| token.reason().unwrap_or_else(|| "cancelled".into())),
    };

    let total = cache.stats();
    eprintln!(
        "[repro] all done: {} cache hits, {} simulations, {} traces cached",
        total.hits,
        total.misses,
        cache.len()
    );
    if !log.failures.is_empty() {
        eprintln!(
            "[repro] WARNING: {} measurement point(s) failed or timed out:",
            log.failures.len()
        );
        for (stage, kind, f) in &log.failures {
            eprintln!("[repro]   {stage}: {} n={} [{kind}]: {}", f.variant, f.n, f.error);
        }
    }
    if total.store_errors > 0 || total.corrupt_lines > 0 {
        eprintln!(
            "[repro] WARNING: store health: {} corrupt line(s) recovered, {} failed append(s)",
            total.corrupt_lines, total.store_errors
        );
    }
    let exit_code = if let Some(reason) = &interrupted {
        if reason.starts_with("signal ") {
            EXIT_SIGNAL
        } else {
            EXIT_DEADLINE
        }
    } else if cache.store_read_only() {
        EXIT_STORE_READ_ONLY
    } else if !log.failures.is_empty() {
        EXIT_POINT_FAILURES
    } else {
        0
    };
    if let Some(reason) = &interrupted {
        cache.flush_store();
        eprintln!(
            "[repro] INTERRUPTED ({reason}): store flushed, {} entries durable; \
             re-run the same command to resume",
            cache.len()
        );
    }
    if let Some(path) = json {
        let doc = render_json(
            &stages,
            &json_figures,
            &cache,
            fast,
            engine.nthreads(),
            &log,
            interrupted.as_deref().map(|r| (r, exit_code)),
        );
        std::fs::write(&path, doc).expect("write --json output");
        eprintln!("[repro] wrote {path}");
    }
    if exit_code != 0 {
        eprintln!("[repro] exiting with code {exit_code} (see README: exit codes)");
    }
    drop(cache); // release the store lock before the hard exit
    std::process::exit(exit_code);
}

/// `repro plan <variant-name> [--n N] [--threads T]`: lower one
/// schedule to the plan IR and print it.
fn run_plan_command(args: &[String]) {
    let mut name: Option<String> = None;
    let mut n: i32 = 32;
    let mut threads: usize = 8;
    fn usage(msg: &str) -> ! {
        eprintln!("repro plan: {msg}");
        eprintln!("usage: repro plan <variant-name> [--n N] [--threads T]");
        std::process::exit(2);
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                n = it
                    .next()
                    .unwrap_or_else(|| usage("--n needs a box size"))
                    .parse()
                    .unwrap_or_else(|_| usage("--n needs a number"))
            }
            "--threads" => {
                threads = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs a number"))
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag '{flag}'")),
            other if name.is_none() => name = Some(other.to_string()),
            other => usage(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(name) = name else { usage("missing variant name") };
    let candidates: Vec<Variant> =
        Variant::enumerate_extended(n).into_iter().filter(|v| v.valid_for_box(n)).collect();
    let Some(&variant) = candidates.iter().find(|v| v.name().eq_ignore_ascii_case(name.trim()))
    else {
        eprintln!("repro plan: no variant named '{name}' is valid for a {n}^3 box; valid names:");
        for v in &candidates {
            eprintln!("  {}", v.name());
        }
        std::process::exit(2);
    };
    let plan = pdesched_core::plan_for(variant, pdesched_mesh::IntVect::splat(n), threads);
    print!("{}", plan.render());
}

/// Write plan dumps for the seven named Figure 10 schedules to
/// `target/plan-dumps/` (the CI artifact) and print them.
fn print_plandump(spec: &MachineSpec, n: i32) {
    let dir = std::path::Path::new("target/plan-dumps");
    std::fs::create_dir_all(dir).expect("create target/plan-dumps");
    println!("== Lowered plans for the Figure 10 schedules ({}, N={n}) ==", spec.name);
    for (name, variant) in figures::n128_variants(spec) {
        let threads =
            if variant.gran == pdesched_core::Granularity::WithinBox { spec.cores() } else { 1 };
        let plan = pdesched_core::plan_for(variant, pdesched_mesh::IntVect::splat(n), threads);
        let text = plan.render();
        let slug: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.txt"));
        std::fs::write(&path, &text).expect("write plan dump");
        println!("-- {name} -> {} --", path.display());
        print!("{text}");
    }
}

/// Everything a supervised run accumulates besides stages and figures:
/// per-point failures/timeouts (with their kind for `--json`) and the
/// journal's account of the interrupted sweep this run resumed.
struct RunLog {
    failures: Vec<(String, &'static str, PointFailure)>,
    resumed_from: Option<PriorSweep>,
}

/// Prewarm one target's simulation points, narrating to stderr and
/// collecting per-point failures and timeouts (the target still renders
/// from whatever did complete). Returns `false` when the sweep was
/// cancelled mid-flight: the caller skips rendering, because rendering
/// would re-measure the missing points serially.
fn prewarm(
    engine: &SweepEngine,
    cache: &TrafficCache,
    target: &str,
    points: Vec<pdesched_machine::SimPoint>,
    log: &mut RunLog,
) -> bool {
    let r = engine.prewarm(cache, &points);
    if let (None, Some(prior)) = (&log.resumed_from, &r.resumed_from) {
        eprintln!(
            "[repro] {target}: resuming an interrupted sweep ({} points planned, \
             {} failed, {} timed out{})",
            prior.total,
            prior.failed,
            prior.timed_out,
            prior.cancelled.as_deref().map(|c| format!(", cancelled: {c}")).unwrap_or_default()
        );
        log.resumed_from = Some(prior.clone());
    }
    if r.measured > 0 || !r.failed.is_empty() || !r.timed_out.is_empty() {
        eprintln!(
            "[repro] {target}: measured {} of {} unique points in {:.1}s \
             ({:.2} points/s) on {} threads{}{}",
            r.measured,
            r.unique,
            r.seconds,
            r.points_per_sec,
            engine.nthreads(),
            if r.failed.is_empty() {
                String::new()
            } else {
                format!(", {} FAILED", r.failed.len())
            },
            if r.timed_out.is_empty() {
                String::new()
            } else {
                format!(", {} TIMED OUT", r.timed_out.len())
            }
        );
    } else {
        eprintln!("[repro] {target}: all {} points already cached", r.unique);
    }
    log.failures.extend(r.failed.into_iter().map(|f| (target.to_string(), "panic", f)));
    log.failures.extend(r.timed_out.into_iter().map(|f| (target.to_string(), "timeout", f)));
    if let Some(reason) = &r.cancelled {
        eprintln!(
            "[repro] {target}: sweep cancelled ({reason}), {} points unmeasured",
            r.remaining
        );
        return false;
    }
    true
}

/// Tiny deterministic fault-tolerance check (seconds, not minutes):
/// two cheap simulation points over a small hierarchy, meant to be run
/// with `REPRO_FAULT` set so an injected panic or append failure flows
/// through the engine, the store, and the `--json` report end to end.
fn print_faultcheck(cache: &TrafficCache, engine: &SweepEngine, log: &mut RunLog) {
    let configs = vec![CacheConfig::new(8 * 1024, 4), CacheConfig::new(64 * 1024, 8)];
    let points: Vec<SimPoint> = [Variant::baseline(), Variant::shift_fuse()]
        .iter()
        .map(|&v| SimPoint { variant: v, n: 8, configs: configs.clone() })
        .collect();
    prewarm(engine, cache, "faultcheck", points.clone(), log);
    println!("== faultcheck: deterministic fault-injection probe ==");
    for p in &points {
        let status = if cache.contains(p.variant, p.n, &p.configs) { "ok" } else { "FAILED" };
        println!("  {:<34} n={:<4} {status}", p.variant.name(), p.n);
    }
}

use pdesched_bench::json_str;

/// Serialize stages + figures + cache counters as JSON (no external
/// dependencies, so the writer is by hand; the shape is stable,
/// versioned by `schema_version`, and documented in the README).
fn render_json(
    stages: &[Stage],
    figs: &[figures::Figure],
    cache: &TrafficCache,
    fast: bool,
    threads: usize,
    log: &RunLog,
    interrupted: Option<(&str, i32)>,
) -> String {
    use std::fmt::Write;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": 2,");
    let _ = writeln!(j, "  \"fast\": {fast},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"mode\": {},", json_str(cache.mode().tag()));
    match interrupted {
        Some((reason, code)) => {
            let _ = writeln!(
                j,
                "  \"interrupted\": {{\"reason\": {}, \"exit_code\": {code}}},",
                json_str(reason)
            );
        }
        None => {
            let _ = writeln!(j, "  \"interrupted\": null,");
        }
    }
    match &log.resumed_from {
        Some(p) => {
            let _ = writeln!(
                j,
                "  \"resumed_from\": {{\"total\": {}, \"failed\": {}, \"timed_out\": {}, \
                 \"cancelled\": {}}},",
                p.total,
                p.failed,
                p.timed_out,
                p.cancelled.as_deref().map(json_str).unwrap_or_else(|| "null".into())
            );
        }
        None => {
            let _ = writeln!(j, "  \"resumed_from\": null,");
        }
    }
    let s = cache.stats();
    let _ = writeln!(
        j,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},",
        s.hits,
        s.misses,
        cache.len()
    );
    let (ph, pm, pe) = pdesched_core::plan::cache_stats();
    let _ =
        writeln!(j, "  \"plan_cache\": {{\"hits\": {ph}, \"misses\": {pm}, \"entries\": {pe}}},");
    let _ = writeln!(
        j,
        "  \"store\": {{\"path\": {}, \"read_only\": {}, \"corrupt_lines\": {}, \"store_errors\": {}}},",
        cache
            .store_path()
            .map(|p| json_str(&p.display().to_string()))
            .unwrap_or_else(|| "null".into()),
        cache.store_read_only(),
        s.corrupt_lines,
        s.store_errors
    );
    let _ = writeln!(j, "  \"failures\": [");
    for (i, (stage, kind, f)) in log.failures.iter().enumerate() {
        let comma = if i + 1 < log.failures.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"stage\": {}, \"kind\": {}, \"variant\": {}, \"n\": {}, \
             \"error\": {}}}{comma}",
            json_str(stage),
            json_str(kind),
            json_str(&f.variant),
            f.n,
            json_str(&f.error)
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"stages\": [");
    for (i, st) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"target\": {}, \"seconds\": {:.6}, \"hits\": {}, \"misses\": {}}}{comma}",
            json_str(&st.name),
            st.seconds,
            st.hits,
            st.misses
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"figures\": [");
    for (i, f) in figs.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"id\": {},", json_str(&f.id));
        let _ = writeln!(j, "      \"title\": {},", json_str(&f.title));
        let _ = writeln!(j, "      \"xlabel\": {},", json_str(&f.xlabel));
        let _ = writeln!(j, "      \"ylabel\": {},", json_str(&f.ylabel));
        let _ = writeln!(j, "      \"series\": [");
        for (k, srs) in f.series.iter().enumerate() {
            let pts: Vec<String> = srs.points.iter().map(|(x, y)| format!("[{x}, {y}]")).collect();
            let comma = if k + 1 < f.series.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "        {{\"label\": {}, \"points\": [{}]}}{comma}",
                json_str(&srs.label),
                pts.join(", ")
            );
        }
        let _ = writeln!(j, "      ]");
        let comma = if i + 1 < figs.len() { "," } else { "" };
        let _ = writeln!(j, "    }}{comma}");
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn print_table1() {
    // Table I for the paper's parameters: C = 5 components, P threads,
    // tile size T. Printed for N = 128, T = 16, P = 24 alongside this
    // implementation's exact (measured-equal) formulas.
    let (n, t, p) = (128, 16, 24);
    println!("== Table I: temporary data per schedule (N={n}, T={t}, C=5, P={p}) ==");
    println!(
        "{:<34} {:>16} {:>16} {:>18} {:>18}",
        "Schedule", "paper flux", "paper velocity", "ours flux (CLO)", "ours velocity"
    );
    let rows: [(&str, Category, Variant); 4] = [
        ("Series of Loops", Category::Series, Variant::baseline()),
        ("Loops shifted and fused", Category::ShiftFuse, Variant::shift_fuse()),
        (
            "Loops shifted, fused, tiled",
            Category::BlockedWavefront,
            Variant::blocked_wavefront(pdesched_core::CompLoop::Outside, t),
        ),
        (
            "Shifted, fused, overlapping tiles",
            Category::OverlappedTile,
            Variant::overlapped(
                pdesched_core::IntraTile::ShiftFuse,
                t,
                pdesched_core::Granularity::WithinBox,
            ),
        ),
    ];
    for (label, cat, variant) in rows {
        let paper = paper_formula(cat, n, t, p);
        let ours = expected(variant, n, p);
        println!(
            "{:<34} {:>16} {:>16} {:>18} {:>18}",
            label, paper.flux_f64, paper.vel_f64, ours.flux_f64, ours.vel_f64
        );
    }
}

/// Design-choice ablations (analytic-model predictions, instant): the
/// tile-size sweep the paper reports ("tile sizes of 8 and 16 were the
/// most efficient") and the hierarchical-OT extension, on the Ivy
/// Bridge node at full threads, N = 128.
fn print_ablation() {
    use pdesched_core::{Granularity, IntraTile};
    use pdesched_machine::model::predict_time_analytic;
    use pdesched_machine::Workload;
    let spec = MachineSpec::ivy_bridge_node();
    let t = spec.cores();
    let wl = Workload::paper(128);
    println!("== Ablations (analytic model, {} @ {t} threads, N=128) ==", spec.name);
    println!("{:<34} {:>12}", "schedule", "pred. time");
    let mut rows: Vec<Variant> = Vec::new();
    for tile in [4, 8, 16, 32] {
        rows.push(Variant::overlapped(IntraTile::ShiftFuse, tile, Granularity::WithinBox));
    }
    for tile in [8, 16, 32] {
        rows.push(Variant::hierarchical(tile, 4, Granularity::WithinBox));
    }
    rows.push(Variant::blocked_wavefront(pdesched_core::CompLoop::Inside, 8));
    rows.push(Variant::shift_fuse());
    rows.push(Variant::baseline());
    for v in rows {
        let p = predict_time_analytic(&spec, v, wl, t);
        println!("{:<34} {:>10.4}s", v.name(), p.seconds);
    }
}

/// Full design-space ranking per machine: the analytic model screens
/// every candidate instantly, then the simulator-backed model confirms
/// the N=16 short list. The confirmation points go through the
/// supervised `prewarm` helper so interruption, timeouts, and resume
/// are narrated and land in `--json` like every other target; a
/// cancelled prewarm stops the sweep (rendering would re-measure the
/// missing points serially).
fn print_sweep(cache: &TrafficCache, engine: &SweepEngine, log: &mut RunLog) {
    for spec in MachineSpec::evaluation_nodes() {
        for n in [16, 128] {
            let ranked = sweep::rank_all(&spec, n);
            println!(
                "== Top schedules on {} for N={n} ({} candidates, {} threads) ==",
                spec.name,
                ranked.len(),
                spec.cores()
            );
            for r in ranked.iter().take(5) {
                println!("  {:<36} {:>10.4}s", r.variant.name(), r.prediction.seconds);
            }
        }
        if !prewarm(engine, cache, "sweep", sweep::top_measured_points(&spec, 16, 3), log) {
            return;
        }
        let confirmed = sweep::rank_top_measured(&spec, 16, 3, cache, engine);
        println!("-- simulator-confirmed top 3 for N=16 --");
        for r in &confirmed {
            println!("  {:<36} {:>10.4}s", r.variant.name(), r.prediction.seconds);
        }
    }
}

fn print_bandwidth(cache: &TrafficCache) {
    println!("== Section VI-B: VTune bandwidth observations on the i5-3570K desktop ==");
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>12}",
        "Schedule", "N", "Threads", "model GB/s", "paper GB/s"
    );
    for row in figures::bandwidth_experiment(cache) {
        println!(
            "{:<12} {:>6} {:>8} {:>16.1} {:>12}",
            row.schedule,
            row.n,
            row.threads,
            row.predicted_gbs,
            row.paper_gbs.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
        );
    }
}
