//! Trace→cachesim pipeline throughput benchmark.
//!
//! ```text
//! bench [--phase traffic|lower|passes|all] [--mode simulate|symbolic|hybrid]
//!       [--label L] [--sizes 16,32,64] [--samples K] [--variants a,b]
//!       [--out PATH] [--skip-reference] [--check-against PATH]
//!       [--threshold X] [--min-speedup X] [--threads N]
//!       [--min-par-speedup X]
//! ```
//!
//! Phases:
//!
//! * `traffic` (default) — time `measure_box_traffic` for the named
//!   variant shortlist, as before.
//! * `lower` — time `pdesched_core::plan::lower` (schedule lowering to
//!   the plan IR) for *every* extended variant valid at each size, and
//!   report lowerings per second. Guards against a lowering-cost
//!   regression sneaking into every solver step and sweep.
//! * `passes` — two things at once. First it times the pass pipeline
//!   itself (lower + `Pipeline::apply` + verifier) for a pinned set of
//!   (variant, pipeline) combinations at each size, reporting applies
//!   per second, gated by `--check-against` like the other kinds.
//!   Second it reruns the headline schedule search
//!   (`search_schedules` on the i5 desktop at the pinned box size) and
//!   **fails** unless a pass-discovered schedule still strictly beats
//!   the best hand-written schedule's simulator-measured pair traffic —
//!   the committed `BENCH_passes.json` records both results and CI
//!   regenerates them.
//! * `all` — the traffic and lower phases (the passes phase is explicit
//!   only: its search leg simulates pair traffic, which is much heavier
//!   than a timing smoke); `--check-against` then checks whichever
//!   kinds the baseline file carries.
//!
//! Times `measure_box_traffic` (the run-batched, hot-line-filtered fast
//! path) and `measure_box_traffic_reference` (the per-element reference
//! path) for each (variant, box size) point and reports simulated
//! accesses per second plus per-point wall time. Results go to
//! `BENCH_<label>.json` at the invocation directory (repo root in CI)
//! unless `--out` overrides the path.
//!
//! * `--samples K` — repeat each timing K times and keep the fastest
//!   (default 3); traffic results are asserted identical across paths
//!   every time, so the benchmark doubles as an equivalence check.
//! * `--skip-reference` — fast path only (for quick smoke runs).
//! * `--check-against PATH --threshold X` — compare this run's fast-path
//!   accesses/sec against a previously committed BENCH JSON and exit
//!   nonzero if any matching point regressed by more than X× (default
//!   3.0, loose enough to absorb machine-to-machine variation while
//!   catching an accidental return to per-element dispatch). Points
//!   missing from the baseline are reported and skipped.
//! * `--mode symbolic|hybrid` — time the symbolic traffic pipeline
//!   (`measure_box_traffic_symbolic`) as the fast path instead; the
//!   comparator becomes the fast-path *simulator*, so `speedup` in the
//!   JSON is symbolic-vs-simulate and the results are asserted
//!   bit-identical on every sample. The default label becomes the mode
//!   name (`BENCH_symbolic.json` — the file CI gates). Points whose
//!   plans the analysis leaves unclaimed (wavefront/overlap) fall back
//!   to the simulator and are marked `"claimed": false`.
//! * `--min-speedup X` — with a symbolic mode, exit nonzero unless
//!   every *claimed* point's symbolic-vs-simulate speedup is at least
//!   X× (the ≥10× throughput criterion, enforced in CI at n=64).
//! * `--threads N` — run the fast path through the set-sharded parallel
//!   measurement pipeline with N engine threads
//!   (`measure_box_traffic_parallel`, or the forced trace-splitter
//!   variant under `--mode simulate`). The comparator becomes the
//!   *serial same-mode engine*, so `speedup` in the JSON is the
//!   parallel-vs-serial wall ratio for one point, and every sample is
//!   still asserted bit-identical. Per-point `engine_threads` and the
//!   deterministic `shard_balance` (total routed ops / max per-shard
//!   ops, the host-independent ceiling on achievable speedup) land in
//!   the JSON.
//! * `--min-par-speedup X` — with `--threads N > 1` and a symbolic
//!   mode, exit nonzero unless every *claimed* point clears X: the wall
//!   speedup when the host actually has N cores
//!   (`available_parallelism() >= N`), otherwise the shard-balance
//!   bound (wall speedup on a core-starved host measures the scheduler,
//!   not the sharding). The gate prints which criterion it used.
//!
//! The JSON is written one point per line so the regression check needs
//! no JSON parser — see `field` below. The `lower_points` array is
//! omitted entirely when the lower phase didn't run (it used to be
//! emitted always-empty).

use pdesched_cachesim::CacheConfig;
use pdesched_core::{CompLoop, Variant};
use pdesched_machine::parallel::{measure_box_traffic_parallel, measure_box_traffic_parallel_sim};
use pdesched_machine::symbolic::{analyze, measure_box_traffic_symbolic};
use pdesched_machine::traffic::{measure_box_traffic, measure_box_traffic_reference, BoxTraffic};
use pdesched_machine::{search_schedules, MachineSpec, TrafficCache};
use std::time::Instant;

/// The undersized stress hierarchy every golden test pins (8 KiB 4-way
/// L1, 64 KiB 8-way LLC): constant capacity misses make it the
/// worst-case load on the simulator itself.
fn hierarchy() -> Vec<CacheConfig> {
    vec![CacheConfig::new(8 * 1024, 4), CacheConfig::new(64 * 1024, 8)]
}

/// Box repetitions `measure_box_traffic` runs per call (its `k`); the
/// per-call access total is the per-box counters times this.
fn boxes_per_call(n: i32) -> u64 {
    if n <= 32 {
        4
    } else if n <= 64 {
        2
    } else {
        1
    }
}

struct Point {
    variant: &'static str,
    n: i32,
    accesses: u64,
    fast_seconds: f64,
    ref_seconds: Option<f64>,
    dram_bytes: u64,
    /// `--mode symbolic|hybrid` only: whether the analysis claimed the
    /// plan (unclaimed points fall back to the simulator, so their
    /// speedup is ~1 and exempt from `--min-speedup`).
    claimed: Option<bool>,
    /// Engine threads the fast path ran with (1 = serial engines).
    engine_threads: usize,
    /// `--threads N > 1` only: total routed ops / max per-shard ops —
    /// the deterministic ceiling on parallel speedup from shard load
    /// balance alone, independent of host core count.
    shard_balance: Option<f64>,
}

impl Point {
    fn fast_macc(&self) -> f64 {
        self.accesses as f64 / self.fast_seconds / 1e6
    }
}

/// One `--phase lower` timing: lowering `variant` for an `n`^3 box.
struct LowerPoint {
    variant: String,
    n: i32,
    lower_seconds: f64,
}

impl LowerPoint {
    fn lowers_per_s(&self) -> f64 {
        1.0 / self.lower_seconds
    }
}

/// One `--phase passes` timing: lowering `variant` and running the
/// `passes` pipeline (including its verifier) for an `n`^3 box.
struct PassPoint {
    variant: &'static str,
    passes: &'static str,
    n: i32,
    apply_seconds: f64,
}

impl PassPoint {
    fn applies_per_s(&self) -> f64 {
        1.0 / self.apply_seconds
    }
}

/// The pinned (variant, threads, pipeline) combinations the passes
/// phase times: one per built-in pass family, on the plan shapes that
/// exercise the interesting analysis paths.
fn pass_combos() -> Vec<(&'static str, Variant, usize, &'static str)> {
    use pdesched_core::Granularity;
    let mut fuse_cli = Variant::shift_fuse();
    fuse_cli.comp = CompLoop::Inside;
    let series_nt = Variant { gran: Granularity::WithinBox, ..Variant::baseline() };
    vec![
        ("series_nt4", series_nt, 4, "elide-barriers,fuse-phases"),
        ("fuse_cli", fuse_cli, 1, "cross-box-fuse:4"),
        ("bwf_cli4", Variant::blocked_wavefront(CompLoop::Inside, 4), 2, "elide-barriers"),
        ("bwf_cli4", Variant::blocked_wavefront(CompLoop::Inside, 4), 2, "rechunk:6"),
    ]
}

/// The headline gate the passes phase re-proves on every run: the box
/// size and machine where the committed `BENCH_passes.json` records a
/// pass-discovered schedule beating the hand-written best.
const HEADLINE_N: i32 = 24;

/// What the headline search found (for the JSON and the gate).
struct SearchRecord {
    machine: String,
    box_n: i32,
    candidates_ranked: usize,
    best_handwritten: String,
    best_handwritten_dram: u64,
    winner: String,
    winner_dram: u64,
    beats: bool,
}

fn named_variants() -> Vec<(&'static str, Variant)> {
    let mut fuse_cli = Variant::shift_fuse();
    fuse_cli.comp = CompLoop::Inside;
    vec![
        ("baseline", Variant::baseline()),
        ("shift_fuse", Variant::shift_fuse()),
        ("fuse_cli", fuse_cli),
        ("bwf_cli4", Variant::blocked_wavefront(CompLoop::Inside, 4)),
    ]
}

fn usage(msg: &str) -> ! {
    eprintln!("bench: {msg}");
    eprintln!(
        "usage: bench [--phase traffic|lower|all] [--mode simulate|symbolic|hybrid] [--label L] \
         [--sizes 16,32,64] [--samples K] [--variants a,b] [--out PATH] [--skip-reference] \
         [--check-against PATH] [--threshold X] [--min-speedup X] [--threads N] \
         [--min-par-speedup X]"
    );
    std::process::exit(2);
}

fn main() {
    let mut label: Option<String> = None;
    let mut sizes: Vec<i32> = vec![16, 32, 64];
    let mut samples: usize = 3;
    let mut out: Option<String> = None;
    let mut skip_reference = false;
    let mut check_against: Option<String> = None;
    let mut threshold: f64 = 3.0;
    let mut min_speedup: Option<f64> = None;
    let mut min_par_speedup: Option<f64> = None;
    let mut threads: usize = 1;
    let mut wanted: Option<Vec<String>> = None;
    let mut phase = String::from("traffic");
    let mut mode = String::from("simulate");

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val =
            |name: &str| it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match arg.as_str() {
            "--phase" => {
                phase = val("--phase");
                if !matches!(phase.as_str(), "traffic" | "lower" | "passes" | "all") {
                    usage("--phase must be traffic, lower, passes, or all");
                }
            }
            "--mode" => {
                mode = val("--mode");
                if !matches!(mode.as_str(), "simulate" | "symbolic" | "hybrid") {
                    usage("--mode must be simulate, symbolic, or hybrid");
                }
            }
            "--label" => label = Some(val("--label")),
            "--sizes" => {
                sizes = val("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad --sizes")))
                    .collect()
            }
            "--samples" => {
                samples = val("--samples").parse().unwrap_or_else(|_| usage("bad --samples"))
            }
            "--variants" => {
                wanted = Some(val("--variants").split(',').map(|s| s.trim().to_string()).collect())
            }
            "--out" => out = Some(val("--out")),
            "--skip-reference" => skip_reference = true,
            "--check-against" => check_against = Some(val("--check-against")),
            "--threshold" => {
                threshold = val("--threshold").parse().unwrap_or_else(|_| usage("bad --threshold"))
            }
            "--min-speedup" => {
                min_speedup = Some(
                    val("--min-speedup").parse().unwrap_or_else(|_| usage("bad --min-speedup")),
                )
            }
            "--threads" => {
                threads = val("--threads").parse().unwrap_or_else(|_| usage("bad --threads"))
            }
            "--min-par-speedup" => {
                min_par_speedup = Some(
                    val("--min-par-speedup")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --min-par-speedup")),
                )
            }
            other => usage(&format!("unrecognized argument '{other}'")),
        }
    }
    if samples == 0 {
        usage("--samples must be at least 1");
    }
    let symbolic_mode = mode != "simulate";
    if min_speedup.is_some() && !symbolic_mode {
        usage("--min-speedup needs --mode symbolic or hybrid");
    }
    if threads == 0 {
        usage("--threads must be at least 1");
    }
    if min_par_speedup.is_some() && (threads < 2 || !symbolic_mode) {
        usage("--min-par-speedup needs --threads N > 1 and --mode symbolic or hybrid");
    }
    let label = label.unwrap_or_else(|| {
        if phase == "passes" {
            String::from("passes")
        } else if symbolic_mode {
            mode.clone()
        } else {
            String::from("local")
        }
    });

    let configs = hierarchy();
    let variants: Vec<(&'static str, Variant)> = match &wanted {
        None => named_variants(),
        Some(names) => {
            let all = named_variants();
            names
                .iter()
                .map(|w| {
                    *all.iter()
                        .find(|(name, _)| name == w)
                        .unwrap_or_else(|| usage(&format!("unknown variant '{w}'")))
                })
                .collect()
        }
    };

    let traffic_phase = phase == "traffic" || phase == "all";
    let lower_phase = phase == "lower" || phase == "all";
    let passes_phase = phase == "passes";

    let mut points = Vec::new();
    for &n in &sizes {
        if !traffic_phase {
            break;
        }
        for &(vname, variant) in &variants {
            if !variant.valid_for_box(n) {
                println!("{vname:<12} n={n:<4} skipped (invalid for box)");
                continue;
            }
            // Serial runs: in a symbolic mode the pipeline under test is
            // the symbolic summarizer and the comparator is the fast-path
            // simulator (itself the thing `--mode simulate` benchmarks
            // against the per-element reference) — so `speedup` stacks:
            // symbolic vs simulate here, simulate vs reference there.
            // With `--threads N > 1` the fast path is the set-sharded
            // parallel pipeline and the comparator is the serial engine
            // of the *same* mode, so `speedup` is parallel-vs-serial.
            let mut shard_balance = None;
            let (fast_seconds, traffic) = if threads > 1 {
                if symbolic_mode {
                    time_best(samples, || {
                        let (t, ps) = measure_box_traffic_parallel(variant, n, &configs, threads);
                        shard_balance = Some(ps.balance());
                        t
                    })
                } else {
                    time_best(samples, || {
                        let (t, ps) =
                            measure_box_traffic_parallel_sim(variant, n, &configs, threads);
                        shard_balance = Some(ps.balance());
                        t
                    })
                }
            } else if symbolic_mode {
                time_best(samples, || measure_box_traffic_symbolic(variant, n, &configs))
            } else {
                time_best(samples, || measure_box_traffic(variant, n, &configs))
            };
            let k = boxes_per_call(n);
            let accesses = (traffic.reads + traffic.writes) * k;
            let ref_seconds = (!skip_reference).then(|| {
                let (secs, r) = if threads > 1 {
                    if symbolic_mode {
                        time_best(samples, || measure_box_traffic_symbolic(variant, n, &configs))
                    } else {
                        time_best(samples, || measure_box_traffic(variant, n, &configs))
                    }
                } else if symbolic_mode {
                    time_best(samples, || measure_box_traffic(variant, n, &configs))
                } else {
                    time_best(samples, || measure_box_traffic_reference(variant, n, &configs))
                };
                assert_eq!(traffic, r, "fast path diverged from comparator for {vname} n={n}");
                secs
            });
            let claimed = symbolic_mode.then(|| analyze(variant, n).fully_claimed());
            let p = Point {
                variant: vname,
                n,
                accesses,
                fast_seconds,
                ref_seconds,
                dram_bytes: traffic.dram_bytes,
                claimed,
                engine_threads: threads,
                shard_balance,
            };
            let tag = match claimed {
                Some(true) => " sym",
                Some(false) => " sim",
                None => "",
            };
            let bal = match shard_balance {
                Some(b) => format!("  balance {b:.2}"),
                None => String::new(),
            };
            match p.ref_seconds {
                Some(r) => println!(
                    "{vname:<12} n={n:<4}{tag} fast {fast_seconds:.3}s ({:7.1} Macc/s)  ref {r:.3}s  speedup {:.2}x{bal}",
                    p.fast_macc(),
                    r / fast_seconds
                ),
                None => println!(
                    "{vname:<12} n={n:<4}{tag} fast {fast_seconds:.3}s ({:7.1} Macc/s){bal}",
                    p.fast_macc()
                ),
            }
            points.push(p);
        }
    }

    let mut lowers: Vec<LowerPoint> = Vec::new();
    if lower_phase {
        // Lowering cost is what every solver step and sweep prewarm pays
        // on a plan-cache miss: time `lower` itself (no caching) for the
        // whole extended space.
        let threads = 8;
        for &n in &sizes {
            for variant in Variant::enumerate_extended(n) {
                if !variant.valid_for_box(n) {
                    continue;
                }
                let secs = time_lower(samples, variant, n, threads);
                let p = LowerPoint { variant: variant.name(), n, lower_seconds: secs };
                println!(
                    "lower  {:<36} n={n:<4} {:.1} us/lowering ({:8.0} lowerings/s)",
                    p.variant,
                    secs * 1e6,
                    p.lowers_per_s()
                );
                lowers.push(p);
            }
        }
    }

    let mut pass_points: Vec<PassPoint> = Vec::new();
    let mut search: Option<SearchRecord> = None;
    if passes_phase {
        use pdesched_core::plan::lower;
        use pdesched_core::Pipeline;
        use pdesched_mesh::IntVect;
        for &n in &sizes {
            for (vname, variant, nthreads, spec) in pass_combos() {
                if !variant.valid_for_box(n) {
                    continue;
                }
                let pipe = Pipeline::parse(spec).expect("pinned pass specs parse");
                if pipe.apply(lower(variant, IntVect::splat(n), nthreads)).is_err() {
                    println!("passes {vname:<12} [{spec}] n={n} skipped (pipeline does not apply)");
                    continue;
                }
                let secs = time_apply(samples, variant, n, nthreads, &pipe);
                let p = PassPoint { variant: vname, passes: spec, n, apply_seconds: secs };
                println!(
                    "passes {vname:<12} [{spec:<26}] n={n:<4} {:.2} ms/apply \
                     ({:8.1} applies/s)",
                    secs * 1e3,
                    p.applies_per_s()
                );
                pass_points.push(p);
            }
        }
        // The headline gate: rerun the schedule search that discovered a
        // pipeline beating the hand-written best, with the exact
        // simulator confirming both sides. Deterministic, so a pass here
        // is a bit-exact reproduction of the committed claim.
        let spec = MachineSpec::i5_desktop();
        let cache = TrafficCache::new();
        println!(
            "search: pass-pipeline schedule search on {} at N={HEADLINE_N} \
             (exact pair simulation)...",
            spec.name
        );
        let t0 = Instant::now();
        let report = search_schedules(&spec, HEADLINE_N, 4, &cache);
        let hand = report.best_handwritten().clone();
        let winner = report.winner().expect("discovered frontier is non-empty").clone();
        println!(
            "search: best hand-written {} = {} DRAM B/box; best discovered {} = {} \
             DRAM B/box ({:.1}s, {} candidates ranked)",
            hand.label(),
            hand.traffic.dram_bytes,
            winner.label(),
            winner.traffic.dram_bytes,
            t0.elapsed().as_secs_f64(),
            report.candidates_ranked
        );
        search = Some(SearchRecord {
            machine: report.machine.clone(),
            box_n: report.box_n,
            candidates_ranked: report.candidates_ranked,
            best_handwritten: hand.label(),
            best_handwritten_dram: hand.traffic.dram_bytes,
            winner: winner.label(),
            winner_dram: winner.traffic.dram_bytes,
            beats: report.beats_handwritten(),
        });
    }

    let path = out.unwrap_or_else(|| format!("BENCH_{label}.json"));
    std::fs::write(
        &path,
        render_json(&label, &mode, threads, &configs, &points, &lowers, &pass_points, &search),
    )
    .expect("write bench JSON");
    println!("wrote {path}");

    if let Some(s) = &search {
        if s.beats {
            let saved = 100.0 * (1.0 - s.winner_dram as f64 / s.best_handwritten_dram as f64);
            println!(
                "search gate: {} beats {} by {saved:.1}% (simulator-confirmed)",
                s.winner, s.best_handwritten
            );
        } else {
            eprintln!(
                "bench: search gate FAILED: no discovered schedule beats {} \
                 ({} DRAM B/box) on {} at N={}",
                s.best_handwritten, s.best_handwritten_dram, s.machine, s.box_n
            );
            std::process::exit(1);
        }
    }

    if let Some(min) = min_par_speedup {
        // Wall speedup only means something when the host can actually
        // run the shards concurrently; on a core-starved host (CI
        // shared runners, the 1-core reproduction box) gate the
        // deterministic shard-balance bound instead.
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let use_wall = cores >= threads;
        println!(
            "par gate: host has {cores} cores for {threads} threads — gating {}",
            if use_wall { "wall speedup" } else { "shard balance" }
        );
        let mut failures = String::new();
        for p in &points {
            if p.claimed != Some(true) {
                continue;
            }
            let got = if use_wall {
                let Some(r) = p.ref_seconds else {
                    usage("--min-par-speedup needs the comparator; drop --skip-reference");
                };
                r / p.fast_seconds
            } else {
                p.shard_balance.expect("parallel points carry a balance")
            };
            if got < min {
                failures
                    .push_str(&format!("  {} n={}: {got:.2} < required {min}\n", p.variant, p.n));
            }
        }
        if !failures.is_empty() {
            eprintln!("bench: parallel gate below --min-par-speedup {min}:\n{failures}");
            std::process::exit(1);
        }
        println!("all claimed points at or above {min} on the parallel gate");
    }

    if let Some(min) = min_speedup {
        let mut failures = String::new();
        for p in &points {
            if p.claimed != Some(true) {
                continue;
            }
            let Some(r) = p.ref_seconds else {
                usage("--min-speedup needs the comparator; drop --skip-reference");
            };
            let speedup = r / p.fast_seconds;
            if speedup < min {
                failures.push_str(&format!(
                    "  {} n={}: {speedup:.2}x < required {min}x\n",
                    p.variant, p.n
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("bench: symbolic speedup below --min-speedup {min}:\n{failures}");
            std::process::exit(1);
        }
        println!("all claimed points at or above {min}x symbolic-vs-simulate");
    }

    if let Some(base) = check_against {
        let baseline = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| usage(&format!("cannot read --check-against {base}: {e}")));
        if let Err(msg) = check_regression(&baseline, &points, &lowers, &pass_points, threshold) {
            eprintln!("bench: REGRESSION vs {base}:\n{msg}");
            std::process::exit(1);
        }
        println!("no regression beyond {threshold}x vs {base}");
    }
}

/// Fastest observed per-lowering wall time over `samples` batches. A
/// single lowering is microseconds, so each batch repeats the call until
/// it has accumulated enough wall time to be measurable.
fn time_lower(samples: usize, variant: Variant, n: i32, threads: usize) -> f64 {
    use pdesched_core::plan::lower;
    use pdesched_mesh::IntVect;
    let size = IntVect::splat(n);
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let mut reps = 0u32;
        let t0 = Instant::now();
        loop {
            std::hint::black_box(lower(variant, size, threads));
            reps += 1;
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed >= 5e-3 || reps >= 1000 {
                best = best.min(elapsed / reps as f64);
                break;
            }
        }
    }
    best
}

/// Fastest observed per-application wall time for lowering `variant`
/// and running `pipe` over it (batched like [`time_lower`]: one
/// application is milliseconds at most, dominated by the verifier's
/// reference lowering and stream normalization).
fn time_apply(
    samples: usize,
    variant: Variant,
    n: i32,
    threads: usize,
    pipe: &pdesched_core::Pipeline,
) -> f64 {
    use pdesched_core::plan::lower;
    use pdesched_mesh::IntVect;
    let size = IntVect::splat(n);
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let mut reps = 0u32;
        let t0 = Instant::now();
        loop {
            std::hint::black_box(
                pipe.apply(lower(variant, size, threads)).expect("pre-flighted pipeline applies"),
            );
            reps += 1;
            let elapsed = t0.elapsed().as_secs_f64();
            if elapsed >= 5e-3 || reps >= 1000 {
                best = best.min(elapsed / reps as f64);
                break;
            }
        }
    }
    best
}

/// Run `f` `samples` times; return the fastest wall time and the (always
/// identical) result.
fn time_best(samples: usize, mut f: impl FnMut() -> BoxTraffic) -> (f64, BoxTraffic) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        if let Some(prev) = result {
            assert_eq!(prev, r, "measurement is not deterministic");
        }
        result = Some(r);
    }
    (best, result.unwrap())
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    label: &str,
    mode: &str,
    threads: usize,
    configs: &[CacheConfig],
    points: &[Point],
    lowers: &[LowerPoint],
    pass_points: &[PassPoint],
    search: &Option<SearchRecord>,
) -> String {
    use pdesched_bench::json_str;
    use std::fmt::Write;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"label\": {},", json_str(label));
    let _ = writeln!(j, "  \"mode\": {},", json_str(mode));
    let _ = writeln!(j, "  \"threads\": {threads},");
    let levels: Vec<String> = configs
        .iter()
        .map(|c| format!("{{\"bytes\": {}, \"assoc\": {}}}", c.size, c.assoc))
        .collect();
    let _ = writeln!(j, "  \"hierarchy\": [{}],", levels.join(", "));
    // Only emitted when the lower phase ran: an always-present empty
    // array used to masquerade as "measured, found nothing".
    if !lowers.is_empty() {
        let _ = writeln!(j, "  \"lower_points\": [");
        for (i, p) in lowers.iter().enumerate() {
            let comma = if i + 1 < lowers.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    {{\"kind\": \"lower\", \"variant\": {}, \"n\": {}, \
                 \"lower_seconds\": {:.9}, \"lowers_per_s\": {:.1}}}{comma}",
                json_str(&p.variant),
                p.n,
                p.lower_seconds,
                p.lowers_per_s()
            );
        }
        let _ = writeln!(j, "  ],");
    }
    // Same convention as `lower_points`: emitted only when the passes
    // phase ran.
    if !pass_points.is_empty() {
        let _ = writeln!(j, "  \"pass_points\": [");
        for (i, p) in pass_points.iter().enumerate() {
            let comma = if i + 1 < pass_points.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    {{\"kind\": \"passes\", \"variant\": {}, \"passes\": {}, \"n\": {}, \
                 \"apply_seconds\": {:.9}, \"applies_per_s\": {:.1}}}{comma}",
                json_str(p.variant),
                json_str(p.passes),
                p.n,
                p.apply_seconds,
                p.applies_per_s()
            );
        }
        let _ = writeln!(j, "  ],");
    }
    if let Some(s) = search {
        let _ = writeln!(
            j,
            "  \"search\": {{\"machine\": {}, \"box_n\": {}, \"candidates_ranked\": {}, \
             \"best_handwritten\": {}, \"best_handwritten_dram_bytes\": {}, \
             \"winner\": {}, \"winner_dram_bytes\": {}, \"beats_handwritten\": {}}},",
            json_str(&s.machine),
            s.box_n,
            s.candidates_ranked,
            json_str(&s.best_handwritten),
            s.best_handwritten_dram,
            json_str(&s.winner),
            s.winner_dram,
            s.beats
        );
    }
    let _ = writeln!(j, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let (rs, rm, sp) = match p.ref_seconds {
            Some(r) => (
                format!("{r:.6}"),
                format!("{:.3}", p.accesses as f64 / r / 1e6),
                format!("{:.3}", r / p.fast_seconds),
            ),
            None => ("null".into(), "null".into(), "null".into()),
        };
        let claimed = match p.claimed {
            Some(true) => ", \"claimed\": true",
            Some(false) => ", \"claimed\": false",
            None => "",
        };
        let balance = match p.shard_balance {
            Some(b) => format!(", \"shard_balance\": {b:.4}"),
            None => String::new(),
        };
        let _ = writeln!(
            j,
            "    {{\"variant\": {}, \"n\": {}, \"accesses\": {}, \
             \"fast_seconds\": {:.6}, \"fast_macc_per_s\": {:.3}, \
             \"ref_seconds\": {rs}, \"ref_macc_per_s\": {rm}, \"speedup\": {sp}, \
             \"dram_bytes\": {}, \"engine_threads\": {}{claimed}{balance}}}{comma}",
            json_str(p.variant),
            p.n,
            p.accesses,
            p.fast_seconds,
            p.fast_macc(),
            p.dram_bytes,
            p.engine_threads
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"key": value` off a single point line (the writer above emits
/// one point per line, so no JSON parser is needed).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // A quoted value may contain commas (e.g. a multi-pass pipeline
    // spec), so close it at the matching quote, not the first comma.
    if let Some(inner) = rest.strip_prefix('"') {
        let end = inner.find('"')?;
        return Some(&inner[..end]);
    }
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Fail if any current point's throughput (fast-path accesses/sec for
/// traffic points, lowerings/sec for lower points, applications/sec
/// for pass points) fell below the baseline's by more than
/// `threshold`×.
fn check_regression(
    baseline: &str,
    points: &[Point],
    lowers: &[LowerPoint],
    pass_points: &[PassPoint],
    threshold: f64,
) -> Result<(), String> {
    use std::fmt::Write;
    let mut failures = String::new();
    for p in points {
        let base = baseline.lines().find(|l| {
            field(l, "kind").is_none_or(|k| k == "traffic")
                && field(l, "variant") == Some(p.variant)
                && field(l, "n").and_then(|v| v.parse::<i32>().ok()) == Some(p.n)
        });
        let Some(line) = base else {
            println!("note: no baseline point for {} n={} — skipped", p.variant, p.n);
            continue;
        };
        let base_macc: f64 = field(line, "fast_macc_per_s")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("unparsable baseline line: {line}"))?;
        let now = p.fast_macc();
        if now * threshold < base_macc {
            let _ = writeln!(
                failures,
                "  {} n={}: {:.1} Macc/s vs baseline {:.1} (allowed floor {:.1})",
                p.variant,
                p.n,
                now,
                base_macc,
                base_macc / threshold
            );
        }
    }
    for p in lowers {
        let base = baseline.lines().find(|l| {
            field(l, "kind") == Some("lower")
                && field(l, "variant") == Some(&p.variant)
                && field(l, "n").and_then(|v| v.parse::<i32>().ok()) == Some(p.n)
        });
        let Some(line) = base else {
            println!("note: no baseline lower point for {} n={} — skipped", p.variant, p.n);
            continue;
        };
        let base_rate: f64 = field(line, "lowers_per_s")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("unparsable baseline line: {line}"))?;
        let now = p.lowers_per_s();
        if now * threshold < base_rate {
            let _ = writeln!(
                failures,
                "  lower {} n={}: {:.0} lowerings/s vs baseline {:.0} (allowed floor {:.0})",
                p.variant,
                p.n,
                now,
                base_rate,
                base_rate / threshold
            );
        }
    }
    for p in pass_points {
        let base = baseline.lines().find(|l| {
            field(l, "kind") == Some("passes")
                && field(l, "variant") == Some(p.variant)
                && field(l, "passes") == Some(p.passes)
                && field(l, "n").and_then(|v| v.parse::<i32>().ok()) == Some(p.n)
        });
        let Some(line) = base else {
            println!(
                "note: no baseline pass point for {} [{}] n={} — skipped",
                p.variant, p.passes, p.n
            );
            continue;
        };
        let base_rate: f64 = field(line, "applies_per_s")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("unparsable baseline line: {line}"))?;
        let now = p.applies_per_s();
        if now * threshold < base_rate {
            let _ = writeln!(
                failures,
                "  passes {} [{}] n={}: {:.0} applies/s vs baseline {:.0} (allowed floor {:.0})",
                p.variant,
                p.passes,
                p.n,
                now,
                base_rate,
                base_rate / threshold
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}
