//! End-to-end robustness checks against the built `repro` binary:
//! store recovery, deterministic fault injection via `REPRO_FAULT`,
//! signal interruption + resume, deadline supervision, the documented
//! exit-code taxonomy, and the failure/store-health fields of `--json`
//! (documented in README).

use pdesched_testkit::TempDir;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_expect(cmd: &mut Command, expected_code: i32) -> (String, String) {
    let out = cmd.output().expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        out.status.code(),
        Some(expected_code),
        "repro must exit {expected_code}; stderr:\n{stderr}"
    );
    (stdout, stderr)
}

fn run(cmd: &mut Command) -> (String, String) {
    run_expect(cmd, 0)
}

#[test]
fn clean_run_reports_healthy_store_and_no_failures() {
    let dir = TempDir::new("repro-clean");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    // Instant targets only: no trace simulation, still exercises the
    // full store + JSON path.
    run(repro()
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "2", "fig1", "table1", "ablation"]));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"schema_version\": 4"), "{json}");
    assert!(json.contains("\"traffic\": {\"claimed_points\": 0, \"fallback_points\": 0"), "{json}");
    assert!(json.contains("\"interrupted\": null"), "{json}");
    assert!(json.contains("\"resumed_from\": null"), "{json}");
    assert!(json.contains("\"fabric\": null"), "unsharded run reports no fabric: {json}");
    assert!(json.contains("\"read_only\": false"), "{json}");
    assert!(json.contains("\"corrupt_lines\": 0"), "{json}");
    assert!(json.contains("\"store_errors\": 0"), "{json}");
    assert!(json.contains("\"failures\": ["), "{json}");
    assert!(!json.contains("\"error\":"), "clean run must report no failures: {json}");
}

/// Walk every JSON string literal in `doc` and fail on a bare `"` that
/// ends a string early or a truncated escape — the failure mode of a
/// writer that forgets to escape. A tiny validator, not a JSON parser:
/// the writers emit one construct per line, so scanning strings is
/// enough to prove the escaping holds.
fn assert_json_strings_wellformed(doc: &str) {
    let mut chars = doc.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '"' {
            continue;
        }
        // Inside a string: consume to the closing quote, honoring
        // escapes; a newline inside a string means an unescaped quote
        // leaked and tore the literal open.
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => {
                    let e = chars.next().expect("truncated escape");
                    assert!(
                        matches!(e, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' | 'u'),
                        "invalid escape \\{e} in JSON output"
                    );
                }
                Some('\n') | None => panic!("unterminated JSON string literal in output"),
                Some(_) => {}
            }
        }
    }
}

/// Regression: a store path containing `"` or `\` must survive the
/// hand-rolled `--json` writer as escaped, parseable JSON.
#[test]
fn hostile_store_path_emits_escaped_json() {
    let dir = TempDir::new("repro-hostile");
    let evil = dir.path().join("we\"ird\\q");
    std::fs::create_dir_all(&evil).expect("create hostile dir");
    let store = evil.join("store.txt");
    let json_path = dir.file("out.json");
    run(repro()
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "1", "fig1"]));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains(r#"we\"ird\\q"#), "path must be escaped in --json: {json}");
    assert_json_strings_wellformed(&json);
}

#[test]
fn corrupted_store_is_recovered_quarantined_and_reported() {
    let dir = TempDir::new("repro-corrupt");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    // A readable-version store (v3, the accepted legacy format) whose
    // entry lines are garbage (bit rot / torn writes): repro must
    // quarantine them, compact the store, and surface the damage in
    // --json — not crash and not trust the data.
    std::fs::write(&store, "# pdesched-traffic-store v3\nthis line is rot\nanother bad line 123\n")
        .unwrap();
    let (_, stderr) = run(repro()
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "1", "fig1"]));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"corrupt_lines\": 2"), "{json}");
    assert!(stderr.contains("store recovery"), "recovery must be narrated: {stderr}");
    let quarantine = std::fs::read_to_string(dir.file("store.txt.quarantine")).unwrap();
    assert!(quarantine.contains("this line is rot"), "{quarantine}");
    // Compacted: the rot is gone and the store is upgraded to the
    // current schema version in the same rewrite.
    let compacted = std::fs::read_to_string(&store).unwrap();
    assert!(!compacted.contains("rot"), "{compacted}");
    assert!(compacted.starts_with("# pdesched-traffic-store v4"), "{compacted}");
}

#[test]
fn injected_panic_degrades_gracefully_and_is_reported() {
    let dir = TempDir::new("repro-fault");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    // Exactly one of the two points failed; the run completes the rest
    // and exits 12 (point failures) so a supervisor can tell a degraded
    // run from a clean one.
    let (stdout, _) = run_expect(
        repro()
            .env("REPRO_FAULT", "panic-sim:0")
            .args(["--store", store.to_str().unwrap()])
            .args(["--json", json_path.to_str().unwrap()])
            .args(["--threads", "2", "faultcheck"]),
        12,
    );
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains(" ok"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("injected fault (REPRO_FAULT)"), "{json}");
    assert!(json.contains("\"stage\": \"faultcheck\""), "{json}");
    assert!(json.contains("\"kind\": \"panic\""), "{json}");
    assert!(json.contains("\"interrupted\": null"), "a failure is not an interruption: {json}");
    let persisted = std::fs::read_to_string(&store).unwrap();
    let entries = persisted.lines().skip(1).filter(|l| !l.is_empty()).count();
    assert_eq!(entries, 1, "the surviving point must be persisted:\n{persisted}");
}

#[test]
fn hung_point_is_killed_by_point_deadline_and_reported_as_timeout() {
    let dir = TempDir::new("repro-hang");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    // A wedged simulation (hang-sim) is killed by --point-deadline; the
    // other point completes, the run exits 12, and --json records the
    // timeout distinctly from a panic.
    let (stdout, stderr) = run_expect(
        repro()
            .env("REPRO_FAULT", "hang-sim:0")
            .args(["--store", store.to_str().unwrap()])
            .args(["--json", json_path.to_str().unwrap()])
            .args(["--threads", "2", "--point-deadline", "0.3", "faultcheck"]),
        12,
    );
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains(" ok"), "the other point must complete: {stdout}");
    assert!(stderr.contains("TIMED OUT"), "{stderr}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"kind\": \"timeout\""), "{json}");
    assert!(json.contains("point deadline"), "{json}");
    assert!(json.contains("\"interrupted\": null"), "a point timeout is contained: {json}");
    // The re-run (no fault) resumes: measures only the killed point.
    let (_, stderr) = run(repro().args(["--store", store.to_str().unwrap()]).args([
        "--threads",
        "2",
        "faultcheck",
    ]));
    assert!(stderr.contains("resuming an interrupted sweep"), "{stderr}");
    assert!(stderr.contains("measured 1 of 2"), "{stderr}");
}

#[cfg(unix)]
#[test]
fn sigint_interrupts_flushes_and_resumes() {
    let dir = TempDir::new("repro-sigint");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    // hang-sim with no deadline: the run deterministically wedges until
    // the signal arrives, so this test has no timing race — the hang's
    // cancel gate releases the worker the moment the token trips.
    let mut child = repro()
        .env("REPRO_FAULT", "hang-sim:0")
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "2", "faultcheck"])
        .spawn()
        .expect("spawn repro");
    std::thread::sleep(std::time::Duration::from_millis(600));
    let killed = Command::new("kill")
        .args(["-s", "INT", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -INT must succeed");
    let status = child.wait().expect("wait repro");
    assert_eq!(status.code(), Some(10), "signal interruption must exit 10");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"reason\": \"signal SIGINT\""), "{json}");
    assert!(json.contains("\"exit_code\": 10"), "{json}");
    // The resumed run completes cleanly and reports what it resumed.
    let json_path2 = dir.file("out2.json");
    run(repro()
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path2.to_str().unwrap()])
        .args(["--threads", "2", "faultcheck"]));
    let json2 = std::fs::read_to_string(&json_path2).unwrap();
    assert!(json2.contains("\"interrupted\": null"), "{json2}");
    assert!(json2.contains("\"cancelled\": \"signal SIGINT\""), "{json2}");
    let persisted = std::fs::read_to_string(&store).unwrap();
    let entries = persisted.lines().skip(1).filter(|l| !l.is_empty()).count();
    assert_eq!(entries, 2, "resume must complete both points:\n{persisted}");
}

/// The fabric's determinism contract end to end: the merged canonical
/// store is a pure function of the measured point set — shard count and
/// worker count must leave no fingerprint in the bytes.
#[test]
fn sharded_sweeps_are_bit_identical_across_shard_and_worker_counts() {
    let dir = TempDir::new("repro-shardeq");
    let store_a = dir.file("a.txt");
    let store_b = dir.file("b.txt");
    let json_path = dir.file("out.json");
    run(repro().args(["--store", store_a.to_str().unwrap()]).args([
        "--threads",
        "2",
        "--shards",
        "1",
        "--workers",
        "1",
        "faultcheck",
    ]));
    let (_, stderr) = run(repro()
        .args(["--store", store_b.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "2", "--shards", "5", "--workers", "3", "faultcheck"]));
    assert!(stderr.contains("[repro] fabric:"), "{stderr}");
    let a = std::fs::read_to_string(&store_a).unwrap();
    let b = std::fs::read_to_string(&store_b).unwrap();
    assert_eq!(a, b, "merged stores must be byte-identical across fabric shapes");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"fabric\": {"), "{json}");
    assert!(json.contains("\"shards\": 5"), "{json}");
    assert!(json.contains("\"stalled\": false"), "{json}");
    assert!(json.contains("\"conflicts\": 0"), "{json}");
    assert!(json.contains("\"shard_status\": ["), "{json}");
    // No shard store or fabric sidecar survives a completed fabric.
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        assert!(!name.contains(".shard"), "leftover shard file {name}");
    }
    // A re-run over the complete store needs no workers at all.
    let (_, stderr) = run(repro().args(["--store", store_b.to_str().unwrap()]).args([
        "--threads",
        "2",
        "--shards",
        "5",
        "--workers",
        "3",
        "faultcheck",
    ]));
    assert!(stderr.contains("every point already stored"), "{stderr}");
}

/// A worker shot mid-measurement (process abort — no unwinding, no
/// flush) is reaped and replaced; the guard file keeps the injected
/// fault from re-firing in the replacement, so the fabric converges and
/// the final store is indistinguishable from an unharmed run.
#[cfg(unix)]
#[test]
fn fabric_survives_an_aborted_worker_and_converges() {
    let dir = TempDir::new("repro-abort");
    let store = dir.file("store.txt");
    let golden_store = dir.file("golden.txt");
    let json_path = dir.file("out.json");
    run(repro().args(["--store", golden_store.to_str().unwrap()]).args([
        "--threads",
        "2",
        "--shards",
        "1",
        "--workers",
        "1",
        "faultcheck",
    ]));
    let (stdout, stderr) = run(repro()
        .env("REPRO_FAULT", "abort-sim:0")
        .env("REPRO_FAULT_GUARD", dir.file("guard").to_str().unwrap())
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "2", "--heartbeat-stale", "2"])
        .args(["--shards", "2", "--workers", "1", "faultcheck"]));
    assert!(stdout.contains(" ok"), "{stdout}");
    assert!(!stdout.contains("FAILED"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    // SIGABRT is reported shell-style (128 + 6), and the pool was
    // refilled at least once.
    assert!(json.contains("134"), "worker_exits must record the abort: {json}\n{stderr}");
    assert!(json.contains("\"stalled\": false"), "{json}");
    assert!(json.contains("\"interrupted\": null"), "{json}");
    assert_eq!(
        std::fs::read_to_string(&store).unwrap(),
        std::fs::read_to_string(&golden_store).unwrap(),
        "a crashed-and-reclaimed fabric must converge to the unharmed bytes"
    );
}

/// Without the guard every replacement worker re-fires the abort; the
/// respawn budget runs dry and the coordinator must stall loudly (exit
/// 14) rather than fall back to quietly measuring everything serially.
#[cfg(unix)]
#[test]
fn fabric_exhausting_its_respawn_budget_stalls_with_exit_14() {
    let dir = TempDir::new("repro-stall");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    let (_, stderr) = run_expect(
        repro()
            .env("REPRO_FAULT", "abort-sim:0")
            .args(["--store", store.to_str().unwrap()])
            .args(["--json", json_path.to_str().unwrap()])
            .args(["--threads", "2", "--heartbeat-stale", "2"])
            .args(["--shards", "1", "--workers", "1", "--fabric-respawns", "1", "faultcheck"]),
        14,
    );
    assert!(stderr.contains("fabric STALLED"), "{stderr}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"stalled\": true"), "{json}");
    assert!(json.contains("\"launches\": 2"), "initial worker + one respawn: {json}");
    assert!(json.contains("\"exit_code\": 14") || json.contains("\"interrupted\": null"), "{json}");
}

#[test]
fn run_deadline_interrupts_with_exit_11() {
    let dir = TempDir::new("repro-deadline");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    let (_, stderr) = run_expect(
        repro()
            .env("REPRO_FAULT", "hang-sim:0")
            .args(["--store", store.to_str().unwrap()])
            .args(["--json", json_path.to_str().unwrap()])
            .args(["--threads", "2", "--deadline", "0.3", "faultcheck"]),
        11,
    );
    assert!(stderr.contains("INTERRUPTED"), "{stderr}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"exit_code\": 11"), "{json}");
    assert!(json.contains("deadline"), "{json}");
}

/// Spawn `repro serve` on an ephemeral port with the given extra env
/// and scrape the bound address from its stderr banner.
fn spawn_serve(
    store: &std::path::Path,
    extra_env: &[(&str, &str)],
) -> (std::process::Child, String) {
    let mut cmd = repro();
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--store", store.to_str().unwrap()])
        .stderr(std::process::Stdio::piped());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn repro serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read serve stderr") > 0 {
        if let Some(rest) = line.trim().strip_prefix("[repro] serve: listening on ") {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("serve must print its bound address before exiting");
    // Keep draining stderr so the child can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

/// One request, one response line; `None` when the server closed the
/// connection without answering.
fn ask(addr: &str, request: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).expect("connect to repro serve");
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    let n = BufReader::new(stream).read_line(&mut line).expect("read response");
    (n > 0).then_some(line)
}

fn drain_with_sigterm(mut child: std::process::Child) {
    let killed = Command::new("kill")
        .args(["-s", "TERM", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -TERM must succeed");
    let status = child.wait().expect("wait repro serve");
    assert_eq!(status.code(), Some(10), "serve drain must exit 10");
}

#[test]
fn serve_answers_requests_and_drains_on_sigterm() {
    let dir = TempDir::new("repro-serve");
    let store = dir.file("store.txt");
    let (child, addr) = spawn_serve(&store, &[]);
    let req = r#"{"machine":"i5","n":8,"threads":2,"top":1}"#;
    let cold = ask(&addr, req).expect("cold request must be answered");
    assert!(cold.contains("\"ok\":true"), "{cold}");
    assert!(cold.contains("\"stale\":false"), "{cold}");
    assert!(cold.contains("\"source\":\"sim\""), "{cold}");
    // The replay is warm: answered from the snapshot, no re-measurement.
    let warm = ask(&addr, req).expect("warm request must be answered");
    assert!(warm.contains("\"ok\":true"), "{warm}");
    assert!(warm.contains("\"source\":\"warm\""), "{warm}");
    drain_with_sigterm(child);
    // The drain compacted and flushed: the measured point persisted.
    let persisted = std::fs::read_to_string(&store).unwrap();
    let entries: Vec<&str> =
        persisted.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
    assert_eq!(entries.len(), 1, "exactly one simulated point:\n{persisted}");
    assert!(entries[0].contains(" sim "), "provenance must be sim:\n{persisted}");
}

#[test]
fn serve_bind_failure_exits_16() {
    let dir = TempDir::new("repro-serve-bind");
    let store = dir.file("store.txt");
    // Hold the port so the server's bind deterministically fails.
    let taken = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = taken.local_addr().unwrap().to_string();
    let (_, stderr) = run_expect(
        repro().args(["serve", "--addr", &addr, "--store", store.to_str().unwrap()]),
        16,
    );
    assert!(stderr.contains("cannot start"), "{stderr}");
}

#[test]
fn serve_injected_request_drop_hits_one_request_not_the_server() {
    let dir = TempDir::new("repro-serve-drop");
    let store = dir.file("store.txt");
    let (child, addr) = spawn_serve(&store, &[("REPRO_FAULT", "drop-req:0")]);
    let req = r#"{"machine":"i5","n":8,"threads":2,"top":1}"#;
    assert!(ask(&addr, req).is_none(), "the dropped request must see EOF, not an answer");
    let resp = ask(&addr, req).expect("server must survive the injected drop");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    drain_with_sigterm(child);
}
