//! End-to-end robustness checks against the built `repro` binary:
//! store recovery, deterministic fault injection via `REPRO_FAULT`, and
//! the failure/store-health fields of `--json` (documented in README).

use pdesched_testkit::TempDir;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("spawn repro");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "repro must exit 0; stderr:\n{stderr}");
    (stdout, stderr)
}

#[test]
fn clean_run_reports_healthy_store_and_no_failures() {
    let dir = TempDir::new("repro-clean");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    // Instant targets only: no trace simulation, still exercises the
    // full store + JSON path.
    run(repro()
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "2", "fig1", "table1", "ablation"]));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"read_only\": false"), "{json}");
    assert!(json.contains("\"corrupt_lines\": 0"), "{json}");
    assert!(json.contains("\"store_errors\": 0"), "{json}");
    assert!(json.contains("\"failures\": ["), "{json}");
    assert!(!json.contains("\"error\":"), "clean run must report no failures: {json}");
}

#[test]
fn corrupted_store_is_recovered_quarantined_and_reported() {
    let dir = TempDir::new("repro-corrupt");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    // A valid-version store whose entry lines are garbage (bit rot /
    // torn writes): repro must quarantine them, compact the store, and
    // surface the damage in --json — not crash and not trust the data.
    std::fs::write(&store, "# pdesched-traffic-store v3\nthis line is rot\nanother bad line 123\n")
        .unwrap();
    let (_, stderr) = run(repro()
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "1", "fig1"]));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"corrupt_lines\": 2"), "{json}");
    assert!(stderr.contains("store recovery"), "recovery must be narrated: {stderr}");
    let quarantine = std::fs::read_to_string(dir.file("store.txt.quarantine")).unwrap();
    assert!(quarantine.contains("this line is rot"), "{quarantine}");
    // Compacted: the rot is gone from the store itself.
    let compacted = std::fs::read_to_string(&store).unwrap();
    assert!(!compacted.contains("rot"), "{compacted}");
    assert!(compacted.starts_with("# pdesched-traffic-store v3"), "{compacted}");
}

#[test]
fn injected_panic_degrades_gracefully_and_is_reported() {
    let dir = TempDir::new("repro-fault");
    let store = dir.file("store.txt");
    let json_path = dir.file("out.json");
    let (stdout, _) = run(repro()
        .env("REPRO_FAULT", "panic-sim:0")
        .args(["--store", store.to_str().unwrap()])
        .args(["--json", json_path.to_str().unwrap()])
        .args(["--threads", "2", "faultcheck"]));
    // Exactly one of the two points failed; the run still exits 0 and
    // the survivor both prints and persists.
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains(" ok"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("injected fault (REPRO_FAULT)"), "{json}");
    assert!(json.contains("\"stage\": \"faultcheck\""), "{json}");
    let persisted = std::fs::read_to_string(&store).unwrap();
    let entries = persisted.lines().skip(1).filter(|l| !l.is_empty()).count();
    assert_eq!(entries, 1, "the surviving point must be persisted:\n{persisted}");
}
