//! A persistent SPMD worker pool.
//!
//! [`crate::spmd`] spawns OS threads per region — fine for long regions,
//! wasteful when a time loop enters thousands of small regions (the
//! `P < Box` schedules enter one region per box per flux evaluation).
//! `SpmdPool` keeps `n - 1` workers parked and replays regions into
//! them, amortizing thread creation the way an OpenMP runtime does.
//!
//! The calling thread participates as thread 0, so a pool of size `n`
//! creates `n - 1` OS threads.
//!
//! # Panic safety
//!
//! A panic inside a region body must not deadlock the process: peers may
//! be blocked at a [`Barrier`] waiting for the dead thread. Every
//! thread (workers *and* the caller acting as thread 0) therefore runs
//! the body under `catch_unwind`; the first panic poisons the region
//! barrier, which wakes any peer blocked in `ctx.barrier()` with a
//! secondary [`BarrierPoisoned`] panic. Every thread is still counted
//! out of the generation, so [`SpmdPool::run`] always completes, clears
//! the barrier poison, and re-propagates the *original* panic payload
//! on the calling thread. The pool remains fully usable for the next
//! region.

use crate::barrier::{Barrier, BarrierPoisoned};
use crate::cancel::{self, CancelToken, Cancelled};
use crate::SpmdCtx;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Type-erased region body shared with the workers for one generation.
type Job = Arc<dyn Fn(usize) + Send + Sync>;

/// A `Send + Sync` wrapper for the borrowed region body. Soundness:
/// [`SpmdPool::run`] blocks until every worker finishes the generation,
/// so the pointee outlives all uses, and the body is `Sync` so shared
/// calls are safe.
struct BodyPtr(*const (dyn Fn(&SpmdCtx<'_>) + Sync));

unsafe impl Send for BodyPtr {}
unsafe impl Sync for BodyPtr {}

impl BodyPtr {
    /// Call the region body.
    ///
    /// # Safety
    /// The pointee must still be alive (guaranteed by `run` blocking
    /// until all workers finish).
    unsafe fn call(&self, ctx: &SpmdCtx<'_>) {
        (*self.0)(ctx)
    }
}

struct Shared {
    /// Monotonic region counter; bumping it wakes the workers.
    generation: Mutex<u64>,
    job: Mutex<Option<Job>>,
    wake: Condvar,
    /// Workers that finished the current generation.
    done: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    shutdown: Mutex<bool>,
    /// First non-secondary panic payload of the current generation.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Record `payload` as the region's primary panic unless one is already
/// held or the payload is the barrier-abort sentinel (a thread that
/// died *because* a peer died is not the interesting failure). An
/// orderly [`Cancelled`] unwind is held only until a *real* panic shows
/// up: a genuine failure always outranks cancellation.
pub(crate) fn record_panic(
    slot: &Mutex<Option<Box<dyn Any + Send>>>,
    payload: Box<dyn Any + Send>,
) {
    if payload.is::<BarrierPoisoned>() {
        return;
    }
    let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
    match &*slot {
        None => *slot = Some(payload),
        Some(held) if held.is::<Cancelled>() && !payload.is::<Cancelled>() => *slot = Some(payload),
        Some(_) => {}
    }
}

/// A persistent pool running SPMD regions on a fixed thread count.
pub struct SpmdPool {
    nthreads: usize,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Reusable per-pool barrier handed to region bodies.
    barrier: Arc<Barrier>,
}

impl SpmdPool {
    /// Create a pool of `nthreads` (including the caller).
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads >= 1);
        let shared = Arc::new(Shared {
            generation: Mutex::new(0),
            job: Mutex::new(None),
            wake: Condvar::new(),
            done: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: Mutex::new(false),
            panic: Mutex::new(None),
        });
        let barrier = Arc::new(Barrier::new(nthreads));
        let mut workers = Vec::new();
        for tid in 1..nthreads {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spmd-worker-{tid}"))
                    .spawn(move || worker_loop(tid, &shared))
                    .expect("spawn worker"),
            );
        }
        SpmdPool { nthreads, shared, workers, barrier }
    }

    /// Number of threads (including the caller).
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Run an SPMD region on all threads of the pool. Blocks until every
    /// thread has finished the body.
    ///
    /// # Panics
    /// If any thread's body panics, the region still completes on every
    /// thread (peers blocked at a barrier are woken, not deadlocked) and
    /// the first panic payload is re-propagated here. The pool stays
    /// usable: the next `run` starts from a clean barrier and panic slot.
    pub fn run<F>(&self, body: F)
    where
        F: Fn(&SpmdCtx) + Sync,
    {
        // Without a token the region cannot report cancellation, so any
        // stray `Cancelled` unwind is re-raised as a panic by run_impl.
        let r = self.run_impl(None, &body);
        debug_assert!(r.is_ok(), "unsupervised region reported cancellation");
    }

    /// Run an SPMD region under `token`'s supervision. Like
    /// [`SpmdPool::run`], but: the region refuses to start on an
    /// already-tripped token; `token` becomes the ambient token (see
    /// [`cancel::set_current`]) of every region thread; a trip poisons
    /// the region barrier so blocked waiters wake and unwind; and an
    /// orderly cancellation is reported as `Err(Cancelled)` instead of a
    /// panic. Real panics still propagate (and outrank cancellation).
    /// The pool stays fully usable after a cancelled generation.
    pub fn run_cancellable<F>(&self, token: &CancelToken, body: F) -> Result<(), Cancelled>
    where
        F: Fn(&SpmdCtx) + Sync,
    {
        self.run_impl(Some(token), &body)
    }

    fn run_impl(
        &self,
        token: Option<&CancelToken>,
        body: &(dyn Fn(&SpmdCtx) + Sync),
    ) -> Result<(), Cancelled> {
        if let Some(t) = token {
            if t.is_tripped() {
                return Err(t.cancelled());
            }
        }
        if self.nthreads == 1 {
            let b = Barrier::new(1);
            let Some(t) = token else {
                body(&SpmdCtx::new(0, 1, &b));
                return Ok(());
            };
            let _ambient = cancel::set_current(Some(t.clone()));
            let r = catch_unwind(AssertUnwindSafe(|| body(&SpmdCtx::new(0, 1, &b))));
            return match r {
                Ok(()) => {
                    if t.is_tripped() {
                        Err(t.cancelled())
                    } else {
                        Ok(())
                    }
                }
                Err(payload) => match payload.downcast::<Cancelled>() {
                    Ok(c) => Err(*c),
                    Err(payload) => resume_unwind(payload),
                },
            };
        }
        let nthreads = self.nthreads;
        let barrier = Arc::clone(&self.barrier);
        // A trip must wake threads blocked at the pool barrier; run_impl
        // clears the poison once every thread is counted out, so the
        // pool's next generation starts clean.
        let _trip_hook = token.map(|t| {
            let b = Arc::clone(&barrier);
            t.on_trip(move || b.poison())
        });
        // Safety: we block until all workers finish the region, so the
        // borrow of `body` outlives every use despite the lifetime
        // erasure in BodyPtr (see its comment).
        let sp = BodyPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(&SpmdCtx<'_>) + Sync + '_),
                *const (dyn Fn(&SpmdCtx<'_>) + Sync + 'static),
            >(body as *const _)
        });
        let barrier2 = Arc::clone(&barrier);
        let shared2 = Arc::clone(&self.shared);
        let job_token = token.cloned();
        let job: Job = Arc::new(move |tid: usize| {
            let _ambient = job_token.as_ref().map(|t| cancel::set_current(Some(t.clone())));
            let ctx = SpmdCtx::new(tid, nthreads, &barrier2);
            // Safety: see above — the pointee is alive for the region.
            let r = catch_unwind(AssertUnwindSafe(|| unsafe { sp.call(&ctx) }));
            if let Err(payload) = r {
                record_panic(&shared2.panic, payload);
                // Wake every peer blocked at the region barrier; they
                // unwind with the (secondary) poison sentinel and are
                // counted out of the generation like any other thread.
                barrier2.poison();
            }
        });

        self.shared.done.store(0, Ordering::SeqCst);
        *self.shared.panic.lock().unwrap_or_else(|e| e.into_inner()) = None;
        {
            *self.shared.job.lock().unwrap() = Some(Arc::clone(&job));
            let mut gen = self.shared.generation.lock().unwrap();
            *gen += 1;
            self.shared.wake.notify_all();
        }
        // Participate as thread 0 (panics are caught inside the job).
        job(0);
        // Wait for the workers; every worker counts itself done whether
        // its body returned or unwound, so this cannot hang.
        let mut g = self.shared.done_lock.lock().unwrap();
        while self.shared.done.load(Ordering::SeqCst) < self.nthreads - 1 {
            g = self.shared.done_cv.wait(g).unwrap();
        }
        drop(g);
        *self.shared.job.lock().unwrap() = None;
        // Every thread is out of the region: recover the barrier for the
        // next generation and surface the first real panic, if any.
        if self.barrier.is_poisoned() {
            self.barrier.clear_poison();
        }
        let payload = self.shared.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(p) = payload {
            match p.downcast::<Cancelled>() {
                Ok(c) if token.is_some() => return Err(*c),
                Ok(c) => resume_unwind(c),
                Err(p) => resume_unwind(p),
            }
        }
        match token {
            Some(t) if t.is_tripped() => Err(t.cancelled()),
            _ => Ok(()),
        }
    }
}

fn worker_loop(tid: usize, shared: &Shared) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut gen = shared.generation.lock().unwrap();
            while *gen == seen_gen && !*shared.shutdown.lock().unwrap() {
                gen = shared.wake.wait(gen).unwrap();
            }
            if *shared.shutdown.lock().unwrap() {
                return;
            }
            seen_gen = *gen;
            shared.job.lock().unwrap().clone()
        };
        if let Some(job) = job {
            job(tid);
            let _g = shared.done_lock.lock().unwrap();
            shared.done.fetch_add(1, Ordering::SeqCst);
            shared.done_cv.notify_one();
        }
    }
}

impl Drop for SpmdPool {
    fn drop(&mut self) {
        *self.shared.shutdown.lock().unwrap() = true;
        {
            let _gen = self.shared.generation.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_all_threads() {
        let pool = SpmdPool::new(4);
        for _ in 0..50 {
            let seen = AtomicU64::new(0);
            pool.run(|ctx| {
                seen.fetch_or(1 << ctx.tid(), Ordering::SeqCst);
            });
            assert_eq!(seen.load(Ordering::SeqCst), 0b1111);
        }
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = SpmdPool::new(1);
        let mut hits = 0;
        let cell = Mutex::new(&mut hits);
        pool.run(|ctx| {
            assert_eq!(ctx.nthreads(), 1);
            **cell.lock().unwrap() += 1;
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn pool_barriers_work_across_regions() {
        let pool = SpmdPool::new(3);
        let counter = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        for round in 0..20 {
            pool.run(|ctx| {
                counter.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
                if counter.load(Ordering::SeqCst) != (round + 1) * 3 {
                    errors.fetch_add(1, Ordering::SeqCst);
                }
                ctx.barrier();
            });
        }
        assert_eq!(errors.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pool_captures_borrowed_state() {
        let pool = SpmdPool::new(4);
        let mut data = vec![0usize; 64];
        {
            let view = crate::UnsafeSlice::new(&mut data);
            pool.run(|ctx| {
                for i in ctx.static_range(view.len()) {
                    unsafe { *view.get_mut(i) = i + 1 };
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn sequential_pools_do_not_interfere() {
        let a = SpmdPool::new(2);
        let b = SpmdPool::new(3);
        let hits = AtomicU64::new(0);
        a.run(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        b.run(|_| {
            hits.fetch_add(10, Ordering::SeqCst);
        });
        a.run(|_| {
            hits.fetch_add(100, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2 + 30 + 200);
    }
}
