//! OpenMP-like SPMD substrate.
//!
//! The paper parallelizes its schedule variants with OpenMP pragmas:
//! `parallel for` over boxes, tiles, or z-slices, and — for the wavefront
//! schedules — repeated parallel regions separated by barriers. Rust's
//! work-stealing pools (rayon) deliberately hide thread identity and give
//! no barrier primitive, so this crate provides the *explicit* model the
//! study needs:
//!
//! * [`spmd`] — run a closure on `n` threads (a `#pragma omp parallel`
//!   region) with a per-region reusable [`Barrier`];
//! * [`SpmdCtx::static_range`] — the static block partition of an
//!   iteration range (`schedule(static)`);
//! * [`SpmdCtx::dynamic_items`] — a shared-counter dynamic scheduler
//!   (`schedule(dynamic, chunk)`);
//! * [`parallel_for_static`], [`parallel_for_dynamic`],
//!   [`parallel_reduce`] — one-shot conveniences;
//! * [`UnsafeSlice`] — a `Sync` view of a mutable slice for kernels whose
//!   index-disjointness the caller guarantees (e.g. one box per thread).
//!
//! `nthreads == 1` takes an inline fast path with no thread spawn and a
//! no-op barrier, so single-threaded benchmarking measures the kernels,
//! not the substrate.

pub mod barrier;
pub mod cancel;
pub mod pool;
pub mod slice;

pub use barrier::{Barrier, BarrierPoisoned};
pub use cancel::{CancelToken, Cancelled, Interest, InterestSet};
pub use pool::SpmdPool;
pub use slice::UnsafeSlice;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-thread context handed to the body of an [`spmd`] region.
pub struct SpmdCtx<'a> {
    tid: usize,
    nthreads: usize,
    barrier: &'a Barrier,
}

impl<'a> SpmdCtx<'a> {
    /// Build a context (used by [`spmd`] and [`SpmdPool`]).
    pub(crate) fn new(tid: usize, nthreads: usize, barrier: &'a Barrier) -> Self {
        SpmdCtx { tid, nthreads, barrier }
    }

    /// This thread's id in `0..nthreads`.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Number of threads in the region.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Wait until every thread of the region reaches this point.
    /// Reusable any number of times.
    ///
    /// # Panics
    /// If a peer thread of the region panicked, the phase can never
    /// complete; this call then panics with a [`BarrierPoisoned`]
    /// payload instead of deadlocking (the SPMD runtime catches it and
    /// re-propagates the peer's original panic to the region's caller).
    #[inline]
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// The contiguous block of `0..total` owned by this thread under a
    /// static partition: the first `total % nthreads` threads get one
    /// extra item (OpenMP `schedule(static)` semantics).
    pub fn static_range(&self, total: usize) -> Range<usize> {
        static_block(self.tid, self.nthreads, total)
    }

    /// Iterate the items of `0..total` owned by this thread under a
    /// round-robin (cyclic) partition: items `tid, tid + n, tid + 2n, …`
    /// (OpenMP `schedule(static, 1)`).
    pub fn cyclic_items(&self, total: usize) -> impl Iterator<Item = usize> {
        let (tid, n) = (self.tid, self.nthreads);
        (tid..total).step_by(n)
    }

    /// Dynamically claim chunks of `chunk` items from the shared counter
    /// until `total` is exhausted, calling `f` for each item
    /// (OpenMP `schedule(dynamic, chunk)`). All threads of the region must
    /// pass the same `counter`, `total`, and `chunk`.
    pub fn dynamic_items(
        &self,
        counter: &AtomicUsize,
        total: usize,
        chunk: usize,
        mut f: impl FnMut(usize),
    ) {
        let chunk = chunk.max(1);
        loop {
            let start = counter.fetch_add(chunk, Ordering::Relaxed);
            if start >= total {
                break;
            }
            for i in start..(start + chunk).min(total) {
                f(i);
            }
        }
    }
}

/// The static block partition: thread `tid` of `n` owns this contiguous
/// sub-range of `0..total`.
pub fn static_block(tid: usize, n: usize, total: usize) -> Range<usize> {
    debug_assert!(tid < n);
    let base = total / n;
    let rem = total % n;
    let lo = tid * base + tid.min(rem);
    let hi = lo + base + usize::from(tid < rem);
    lo..hi
}

/// Run `body` as an SPMD region on `nthreads` threads.
///
/// Equivalent to `#pragma omp parallel num_threads(nthreads)`; the body
/// receives an [`SpmdCtx`] carrying the thread id and the region barrier.
/// With `nthreads == 1` the body runs inline on the calling thread.
///
/// Panic-safe: a panicking thread poisons the region barrier so peers
/// blocked in [`SpmdCtx::barrier`] wake instead of deadlocking, and the
/// first panic payload is re-propagated on the calling thread once every
/// thread has left the region.
///
/// Cancellation-aware: if the calling thread has an ambient
/// [`CancelToken`] (see [`cancel::set_current`]), it is forwarded into
/// every region thread, a trip poisons the region barrier (waking any
/// blocked waiter), and the region re-raises [`Cancelled`] on the caller
/// once all threads have unwound. Real panics take precedence over
/// cancellation in the re-raised payload.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let hits = AtomicUsize::new(0);
/// pdesched_par::spmd(4, |ctx| {
///     // Each thread owns a disjoint block of 0..100.
///     let mine = ctx.static_range(100);
///     hits.fetch_add(mine.len(), Ordering::Relaxed);
///     ctx.barrier(); // all threads reach this point together
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub fn spmd<F>(nthreads: usize, body: F)
where
    F: Fn(&SpmdCtx) + Sync,
{
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    assert!(nthreads >= 1);
    let token = cancel::current();
    if nthreads == 1 {
        if let Some(t) = &token {
            t.check();
        }
        let barrier = Barrier::new(1);
        body(&SpmdCtx { tid: 0, nthreads: 1, barrier: &barrier });
        return;
    }
    if let Some(t) = &token {
        t.check();
    }
    let barrier = std::sync::Arc::new(Barrier::new(nthreads));
    // A trip must wake threads blocked at the region barrier; they
    // unwind with the poison sentinel and the post-region check below
    // turns the trip into a `Cancelled` panic on the caller.
    let _trip_hook = token.as_ref().map(|t| {
        let b = std::sync::Arc::clone(&barrier);
        t.on_trip(move || b.poison())
    });
    // First non-secondary panic of the region (see `BarrierPoisoned`).
    let first_panic: std::sync::Mutex<Option<Box<dyn std::any::Any + Send>>> =
        std::sync::Mutex::new(None);
    std::thread::scope(|s| {
        for tid in 0..nthreads {
            let barrier = &barrier;
            let body = &body;
            let first_panic = &first_panic;
            let token = &token;
            s.spawn(move || {
                let _ambient = token.as_ref().map(|t| cancel::set_current(Some(t.clone())));
                let r = catch_unwind(AssertUnwindSafe(|| {
                    body(&SpmdCtx { tid, nthreads, barrier });
                }));
                if let Err(payload) = r {
                    pool::record_panic(first_panic, payload);
                    // Wake peers blocked at the region barrier.
                    barrier.poison();
                }
            });
        }
    });
    let payload = first_panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
    if let Some(t) = &token {
        // Every thread may have unwound with only the (filtered) poison
        // sentinel; the region must still not report completion.
        t.check();
    }
}

/// `#pragma omp parallel for schedule(static)` over `0..total`.
pub fn parallel_for_static<F>(nthreads: usize, total: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if nthreads == 1 || total <= 1 {
        for i in 0..total {
            f(i);
        }
        return;
    }
    spmd(nthreads.min(total), |ctx| {
        for i in ctx.static_range(total) {
            f(i);
        }
    });
}

/// `#pragma omp parallel for schedule(dynamic, chunk)` over `0..total`.
pub fn parallel_for_dynamic<F>(nthreads: usize, total: usize, chunk: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if nthreads == 1 || total <= 1 {
        for i in 0..total {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    spmd(nthreads.min(total), |ctx| {
        ctx.dynamic_items(&counter, total, chunk, &f);
    });
}

/// Parallel reduction: maps each index through `f` and folds with `merge`
/// starting from `identity` (per thread), then merges the per-thread
/// results in thread order for determinism.
pub fn parallel_reduce<T, F, M>(nthreads: usize, total: usize, identity: T, f: F, merge: M) -> T
where
    T: Clone + Send + Sync,
    F: Fn(usize) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    if nthreads == 1 || total <= 1 {
        let mut acc = identity;
        for i in 0..total {
            acc = merge(acc, f(i));
        }
        return acc;
    }
    let n = nthreads.min(total);
    let partials: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    spmd(n, |ctx| {
        let mut acc = identity.clone();
        for i in ctx.static_range(total) {
            acc = merge(acc, f(i));
        }
        *partials[ctx.tid()].lock().unwrap() = Some(acc);
    });
    let mut acc = identity;
    for p in partials {
        if let Some(v) = p.into_inner().unwrap() {
            acc = merge(acc, v);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn static_block_partitions_exactly() {
        for n in 1..=7 {
            for total in [0usize, 1, 5, 16, 17, 100] {
                let mut covered = vec![0u32; total];
                let mut prev_end = 0;
                for tid in 0..n {
                    let r = static_block(tid, n, total);
                    assert_eq!(r.start, prev_end, "blocks must be contiguous");
                    prev_end = r.end;
                    for i in r {
                        covered[i] += 1;
                    }
                }
                assert_eq!(prev_end, total);
                assert!(covered.iter().all(|&c| c == 1), "n={n} total={total}");
            }
        }
    }

    #[test]
    fn static_block_balanced() {
        let sizes: Vec<usize> = (0..5).map(|t| static_block(t, 5, 23).len()).collect();
        assert_eq!(sizes, vec![5, 5, 5, 4, 4]);
    }

    #[test]
    fn spmd_runs_all_tids() {
        for n in [1, 2, 4, 7] {
            let seen = AtomicU64::new(0);
            spmd(n, |ctx| {
                assert_eq!(ctx.nthreads(), n);
                seen.fetch_or(1 << ctx.tid(), Ordering::SeqCst);
            });
            assert_eq!(seen.load(Ordering::SeqCst), (1u64 << n) - 1);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        // Each thread writes its tid in phase 1; after the barrier every
        // thread must observe all writes.
        const N: usize = 4;
        let data: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let fail = AtomicUsize::new(0);
        spmd(N, |ctx| {
            data[ctx.tid()].store(ctx.tid(), Ordering::SeqCst);
            ctx.barrier();
            for (i, d) in data.iter().enumerate() {
                if d.load(Ordering::SeqCst) != i {
                    fail.fetch_add(1, Ordering::SeqCst);
                }
            }
            ctx.barrier();
        });
        assert_eq!(fail.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn repeated_barriers() {
        // Sense reversal must make the barrier reusable across many phases.
        const N: usize = 3;
        const PHASES: usize = 200;
        let counter = AtomicUsize::new(0);
        let bad = AtomicUsize::new(0);
        spmd(N, |ctx| {
            for phase in 0..PHASES {
                counter.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
                if counter.load(Ordering::SeqCst) != (phase + 1) * N {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
                ctx.barrier();
            }
        });
        assert_eq!(bad.load(Ordering::SeqCst), 0);
        assert_eq!(counter.load(Ordering::SeqCst), PHASES * N);
    }

    #[test]
    fn parallel_for_static_covers() {
        for n in [1, 2, 5] {
            let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
            parallel_for_static(n, 37, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn parallel_for_dynamic_covers() {
        for n in [1, 2, 4] {
            for chunk in [1, 3, 16] {
                let hits: Vec<AtomicUsize> = (0..53).map(|_| AtomicUsize::new(0)).collect();
                parallel_for_dynamic(n, 53, chunk, |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1), "n={n} chunk={chunk}");
            }
        }
    }

    #[test]
    fn parallel_for_more_threads_than_items() {
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_static(8, 3, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn reduce_sums() {
        for n in [1, 2, 4, 6] {
            let s = parallel_reduce(n, 1000, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(s, 999 * 1000 / 2);
        }
    }

    #[test]
    fn reduce_deterministic_float_order() {
        // Per-thread partials merged in thread order: the result must be
        // identical run to run for a fixed thread count.
        let run = || parallel_reduce(4, 10_000, 0.0f64, |i| 1.0 / (1.0 + i as f64), |a, b| a + b);
        let a = run();
        for _ in 0..5 {
            assert_eq!(a.to_bits(), run().to_bits());
        }
    }

    #[test]
    fn cyclic_items_cover() {
        let mut covered = [0u32; 17];
        for tid in 0..4 {
            let ctx_items: Vec<usize> = (tid..17).step_by(4).collect();
            for i in ctx_items {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn dynamic_items_disjoint_complete() {
        const TOTAL: usize = 101;
        let hits: Vec<AtomicUsize> = (0..TOTAL).map(|_| AtomicUsize::new(0)).collect();
        let counter = AtomicUsize::new(0);
        spmd(4, |ctx| {
            ctx.dynamic_items(&counter, TOTAL, 7, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }
}
