//! `Sync` views of mutable slices for caller-guaranteed disjoint access.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A `Sync` wrapper around a mutable slice that lets multiple threads of
/// an SPMD region obtain `&mut` references to **disjoint** elements.
///
/// The scheduling layer partitions work so that no element index is
/// touched by two threads (boxes to threads, tiles to threads, cache
/// entries by owner row). The type system cannot see that partition, so
/// access is `unsafe` with the disjointness obligation documented on each
/// method.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<'a, T: Send> Sync for UnsafeSlice<'a, T> {}
unsafe impl<'a, T: Send> Send for UnsafeSlice<'a, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice. The wrapper borrows the slice for `'a`, so
    /// no other access is possible while it exists.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base byte address of the underlying storage (for building memory
    /// traces).
    #[inline]
    pub fn as_addr(&self) -> usize {
        self.ptr as usize
    }

    /// Get a mutable reference to element `i`.
    ///
    /// # Safety
    /// During the lifetime of the returned reference no other thread may
    /// access element `i` (the caller's work partition must make indices
    /// thread-disjoint).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }

    /// Read element `i` (for `T: Copy`).
    ///
    /// # Safety
    /// No other thread may be writing element `i` concurrently.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// No other thread may be accessing element `i` concurrently.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = v;
    }
}

/// A `Sync` cell wrapping a single value mutated by exactly one thread of
/// a region at a time (e.g. a per-phase scratch handed around at
/// barriers).
pub struct RegionCell<T>(UnsafeCell<T>);

unsafe impl<T: Send> Sync for RegionCell<T> {}

impl<T> RegionCell<T> {
    /// Wrap a value.
    pub fn new(v: T) -> Self {
        RegionCell(UnsafeCell::new(v))
    }

    /// Get a mutable reference.
    ///
    /// # Safety
    /// Caller must guarantee exclusive access for the reference lifetime
    /// (e.g. the cell is owned by one thread between two barriers).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        &mut *self.0.get()
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd;

    #[test]
    fn disjoint_writes_from_threads() {
        let mut data = vec![0usize; 64];
        {
            let view = UnsafeSlice::new(&mut data);
            spmd(4, |ctx| {
                for i in ctx.static_range(view.len()) {
                    // Safety: static_range gives disjoint index blocks.
                    unsafe { *view.get_mut(i) = i * 10 };
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * 10);
        }
    }

    #[test]
    fn read_write_roundtrip() {
        let mut data = vec![1.5f64; 8];
        let view = UnsafeSlice::new(&mut data);
        unsafe {
            view.write(3, 9.25);
            assert_eq!(view.read(3), 9.25);
            assert_eq!(view.read(0), 1.5);
        }
        assert_eq!(view.len(), 8);
        assert!(!view.is_empty());
    }

    #[test]
    fn region_cell_single_owner() {
        let cell = RegionCell::new(vec![0u32; 4]);
        unsafe {
            cell.get_mut()[2] = 7;
        }
        assert_eq!(cell.into_inner(), vec![0, 0, 7, 0]);
    }
}
