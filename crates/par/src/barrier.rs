//! A reusable sense-reversing barrier.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A reusable barrier for a fixed party count.
///
/// Implementation: *sense reversal*. Arrivals decrement a counter; the
/// last arrival resets the counter and flips the global sense, releasing
/// everyone waiting on the old sense. Waiters spin briefly (wavefront
/// phases in this workload are microseconds apart) and then block on a
/// condvar, so the barrier is cheap under load yet does not burn CPU when
/// threads are descheduled.
///
/// A `count` of 1 short-circuits to a no-op so that single-threaded
/// regions measure zero synchronization cost.
pub struct Barrier {
    count: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// How many times a waiter polls the sense flag before blocking.
const SPIN_LIMIT: u32 = 4096;

impl Barrier {
    /// A barrier for `count` parties.
    pub fn new(count: usize) -> Self {
        assert!(count >= 1);
        Barrier {
            count,
            remaining: AtomicUsize::new(count),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.count
    }

    /// Block until all `count` parties have called `wait`. Reusable: the
    /// next `count` calls form the next phase.
    pub fn wait(&self) {
        if self.count == 1 {
            return;
        }
        let my_sense = self.sense.load(Ordering::Acquire);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset and release the phase.
            self.remaining.store(self.count, Ordering::Release);
            // Publish the flip under the lock so blocked waiters cannot
            // miss the notification.
            let _g = self.lock.lock().unwrap();
            self.sense.store(!my_sense, Ordering::Release);
            self.cv.notify_all();
            return;
        }
        // Spin a little, then block.
        let mut spins = 0;
        while self.sense.load(Ordering::Acquire) == my_sense {
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                let g = self.lock.lock().unwrap();
                if self.sense.load(Ordering::Acquire) != my_sense {
                    return;
                }
                drop(self.cv.wait(g).unwrap());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_party_is_noop() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
        assert_eq!(b.parties(), 1);
    }

    #[test]
    fn stress_many_phases() {
        const N: usize = 4;
        const PHASES: usize = 1000;
        let b = Barrier::new(N);
        let phase_counts: Vec<AtomicUsize> = (0..PHASES).map(|_| AtomicUsize::new(0)).collect();
        let errors = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for (p, pc) in phase_counts.iter().enumerate() {
                        pc.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, all N must have counted in
                        // this phase and none in the next.
                        if pc.load(Ordering::SeqCst) != N {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                        if p + 1 < PHASES && phase_counts[p + 1].load(Ordering::SeqCst) > N {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(errors.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn two_threads_alternate() {
        let b = Barrier::new(2);
        let turn = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    while turn.load(Ordering::SeqCst) != 2 * i {
                        std::hint::spin_loop();
                    }
                    turn.store(2 * i + 1, Ordering::SeqCst);
                    b.wait();
                }
            });
            s.spawn(|| {
                for i in 0..100 {
                    while turn.load(Ordering::SeqCst) != 2 * i + 1 {
                        std::hint::spin_loop();
                    }
                    turn.store(2 * i + 2, Ordering::SeqCst);
                    b.wait();
                }
            });
        });
        assert_eq!(turn.load(Ordering::SeqCst), 200);
    }
}
