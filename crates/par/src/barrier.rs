//! A reusable sense-reversing barrier with an abort/poison protocol.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A reusable barrier for a fixed party count.
///
/// Implementation: *sense reversal*. Arrivals decrement a counter; the
/// last arrival resets the counter and flips the global sense, releasing
/// everyone waiting on the old sense. Waiters spin briefly (wavefront
/// phases in this workload are microseconds apart) and then block on a
/// condvar, so the barrier is cheap under load yet does not burn CPU when
/// threads are descheduled.
///
/// A `count` of 1 short-circuits to a no-op so that single-threaded
/// regions measure zero synchronization cost.
///
/// # Abort protocol
///
/// A barrier phase only completes when all parties arrive. If a party
/// dies instead — an SPMD region body panics — everyone else would wait
/// forever, so the barrier can be [`poison`](Barrier::poison)ed: all
/// current and future waiters wake immediately and panic with a
/// [`BarrierPoisoned`] payload instead of completing the phase. The
/// SPMD runtimes in this crate catch that sentinel panic per thread,
/// drain the region, and re-propagate the *original* panic to the
/// caller; once every party has stopped using the barrier the owner
/// calls [`clear_poison`](Barrier::clear_poison) to make it reusable.
pub struct Barrier {
    count: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
    poisoned: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Panic payload thrown by [`Barrier::wait`] when the barrier is
/// poisoned: the phase cannot complete because a peer died. The SPMD
/// runtimes recognize this payload as *secondary* — the interesting
/// panic is the peer's original one.
#[derive(Debug)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SPMD region aborted: a peer thread panicked before reaching the barrier")
    }
}

/// How many times a waiter polls the sense flag before blocking.
const SPIN_LIMIT: u32 = 4096;

impl Barrier {
    /// A barrier for `count` parties.
    pub fn new(count: usize) -> Self {
        assert!(count >= 1);
        Barrier {
            count,
            remaining: AtomicUsize::new(count),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.count
    }

    /// Abort the barrier: every current and future [`wait`](Self::wait)
    /// panics with [`BarrierPoisoned`] instead of blocking. Idempotent.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        // Publish under the lock so a waiter that checked the flag and
        // is about to block cannot miss the notification.
        let _g = self.lock.lock().unwrap();
        self.cv.notify_all();
    }

    /// Whether [`poison`](Self::poison) has been called since the last
    /// [`clear_poison`](Self::clear_poison).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Recover a poisoned barrier for reuse.
    ///
    /// Callable only when no thread is inside [`wait`](Self::wait) (the
    /// pool guarantees this by counting every thread out of the region
    /// first); the arrival counter is reset because aborted waiters
    /// never completed their phase.
    pub fn clear_poison(&self) {
        self.remaining.store(self.count, Ordering::Release);
        self.poisoned.store(false, Ordering::Release);
    }

    /// Panic with the poison sentinel.
    fn abort() -> ! {
        std::panic::panic_any(BarrierPoisoned)
    }

    /// Block until all `count` parties have called `wait`. Reusable: the
    /// next `count` calls form the next phase.
    ///
    /// # Panics
    /// Panics with a [`BarrierPoisoned`] payload if the barrier is (or
    /// becomes) poisoned before the phase completes.
    pub fn wait(&self) {
        if self.count == 1 {
            return;
        }
        if self.is_poisoned() {
            Self::abort();
        }
        let my_sense = self.sense.load(Ordering::Acquire);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset and release the phase.
            self.remaining.store(self.count, Ordering::Release);
            // Publish the flip under the lock so blocked waiters cannot
            // miss the notification.
            let _g = self.lock.lock().unwrap();
            self.sense.store(!my_sense, Ordering::Release);
            self.cv.notify_all();
            return;
        }
        // Spin a little, then block. Re-check the poison flag on every
        // iteration so an abort wakes spinners as well as blockers.
        let mut spins = 0;
        while self.sense.load(Ordering::Acquire) == my_sense {
            if self.is_poisoned() {
                Self::abort();
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                let g = self.lock.lock().unwrap();
                if self.sense.load(Ordering::Acquire) != my_sense {
                    return;
                }
                if self.is_poisoned() {
                    Self::abort();
                }
                drop(self.cv.wait(g).unwrap());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_party_is_noop() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
        assert_eq!(b.parties(), 1);
    }

    #[test]
    fn stress_many_phases() {
        const N: usize = 4;
        const PHASES: usize = 1000;
        let b = Barrier::new(N);
        let phase_counts: Vec<AtomicUsize> = (0..PHASES).map(|_| AtomicUsize::new(0)).collect();
        let errors = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for (p, pc) in phase_counts.iter().enumerate() {
                        pc.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, all N must have counted in
                        // this phase and none in the next.
                        if pc.load(Ordering::SeqCst) != N {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                        if p + 1 < PHASES && phase_counts[p + 1].load(Ordering::SeqCst) > N {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(errors.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn two_threads_alternate() {
        let b = Barrier::new(2);
        let turn = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    while turn.load(Ordering::SeqCst) != 2 * i {
                        std::hint::spin_loop();
                    }
                    turn.store(2 * i + 1, Ordering::SeqCst);
                    b.wait();
                }
            });
            s.spawn(|| {
                for i in 0..100 {
                    while turn.load(Ordering::SeqCst) != 2 * i + 1 {
                        std::hint::spin_loop();
                    }
                    turn.store(2 * i + 2, Ordering::SeqCst);
                    b.wait();
                }
            });
        });
        assert_eq!(turn.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn poison_wakes_blocked_waiter() {
        let b = Barrier::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| std::panic::catch_unwind(|| b.wait()));
            // Give the waiter time to block, then abort the phase.
            std::thread::sleep(std::time::Duration::from_millis(20));
            b.poison();
            let r = waiter.join().unwrap();
            let payload = r.expect_err("poisoned wait must panic");
            assert!(payload.is::<BarrierPoisoned>());
        });
        assert!(b.is_poisoned());
    }

    #[test]
    fn poisoned_wait_aborts_immediately() {
        let b = Barrier::new(3);
        b.poison();
        let r = std::panic::catch_unwind(|| b.wait());
        assert!(r.expect_err("must abort").is::<BarrierPoisoned>());
    }

    #[test]
    fn clear_poison_restores_reuse() {
        let b = Barrier::new(2);
        // Poison with one party already counted in.
        std::thread::scope(|s| {
            let waiter = s.spawn(|| std::panic::catch_unwind(|| b.wait()));
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
            assert!(waiter.join().unwrap().is_err());
        });
        b.clear_poison();
        assert!(!b.is_poisoned());
        // A full phase completes again even though the aborted phase
        // left mid-count: clear_poison reset the arrival counter.
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    b.wait();
                    hits.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
