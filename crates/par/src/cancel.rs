//! Cooperative cancellation for SPMD regions.
//!
//! A [`CancelToken`] is an atomic flag plus a human-readable reason.
//! Tripping it never preempts anything: running code observes the flag
//! at *checkpoints* — [`Barrier`](crate::Barrier) waits (via trip hooks
//! that poison the region barrier, waking every blocked waiter) and
//! explicit [`check_current`] calls between units of work — and unwinds
//! with a [`Cancelled`] panic payload that the SPMD runtimes recognize
//! as an orderly abort rather than a failure.
//!
//! Tokens form a tree: [`CancelToken::child`] makes a token that trips
//! when its parent trips but can also be tripped alone (a per-work-item
//! deadline under a whole-sweep token). [`CancelToken::tripped_directly`]
//! distinguishes "my own deadline fired" from "the whole sweep was
//! cancelled".
//!
//! Propagation is by *ambient token*: a runtime installs the token for
//! the current thread with [`set_current`] (restored on scope exit),
//! and leaf code — deep inside a plan interpreter or a fault hook —
//! polls [`check_current`] without threading a handle through every
//! signature. [`crate::spmd`] forwards the caller's ambient token into
//! every spawned region thread.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Panic payload (and [`SpmdPool::run_cancellable`] error) of an
/// orderly cancellation: the region stopped because its token tripped,
/// not because anything failed.
///
/// [`SpmdPool::run_cancellable`]: crate::SpmdPool::run_cancellable
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cancelled {
    /// The reason recorded by the first [`CancelToken::trip`].
    pub reason: String,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cancelled: {}", self.reason)
    }
}

/// A registered trip hook; removed by id when its guard drops.
struct Hook {
    id: u64,
    f: Box<dyn Fn() + Send + Sync>,
}

static NEXT_HOOK_ID: AtomicU64 = AtomicU64::new(0);

struct Inner {
    tripped: AtomicBool,
    reason: Mutex<Option<String>>,
    hooks: Mutex<Vec<Hook>>,
    children: Mutex<Vec<Weak<Inner>>>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn new(parent: Option<Arc<Inner>>) -> Self {
        Inner {
            tripped: AtomicBool::new(false),
            reason: Mutex::new(None),
            hooks: Mutex::new(Vec::new()),
            children: Mutex::new(Vec::new()),
            parent,
        }
    }

    fn is_tripped(&self) -> bool {
        if self.tripped.load(Ordering::Acquire) {
            return true;
        }
        match &self.parent {
            Some(p) => p.is_tripped(),
            None => false,
        }
    }

    fn reason(&self) -> Option<String> {
        let own = self.reason.lock().unwrap_or_else(|e| e.into_inner()).clone();
        own.or_else(|| self.parent.as_ref().and_then(|p| p.reason()))
    }

    /// Run this token's hooks and cascade into live descendants (their
    /// `tripped` flags stay untouched — chaining happens through
    /// `parent` on reads — but their hooks must fire so e.g. a barrier
    /// guarding a child's region is poisoned by a parent-level trip).
    fn fire_hooks(&self) {
        {
            let hooks = self.hooks.lock().unwrap_or_else(|e| e.into_inner());
            for h in hooks.iter() {
                (h.f)();
            }
        }
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        for c in children.iter() {
            if let Some(c) = c.upgrade() {
                c.fire_hooks();
            }
        }
    }
}

/// A cancellation flag shared by cloning; see the module docs.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("tripped", &self.is_tripped())
            .field("reason", &self.reason())
            .finish()
    }
}

impl CancelToken {
    /// A fresh, untripped token with no parent.
    pub fn new() -> Self {
        CancelToken { inner: Arc::new(Inner::new(None)) }
    }

    /// A child token: tripped whenever `self` is tripped, but also
    /// trippable on its own (per-item deadlines under a sweep token).
    pub fn child(&self) -> CancelToken {
        let inner = Arc::new(Inner::new(Some(Arc::clone(&self.inner))));
        let mut children = self.inner.children.lock().unwrap_or_else(|e| e.into_inner());
        // Prune children that finished their work (only their Weak is
        // left) so a long-lived sweep token doesn't accumulate one slot
        // per completed item.
        children.retain(|c| c.strong_count() > 0);
        children.push(Arc::downgrade(&inner));
        drop(children);
        CancelToken { inner }
    }

    /// Trip the token: record `reason` (first trip wins), run every
    /// registered hook, and cascade into child tokens' hooks. Returns
    /// `false` if this token was already tripped directly.
    pub fn trip(&self, reason: &str) -> bool {
        if self.inner.tripped.swap(true, Ordering::AcqRel) {
            return false;
        }
        {
            let mut r = self.inner.reason.lock().unwrap_or_else(|e| e.into_inner());
            if r.is_none() {
                *r = Some(reason.to_string());
            }
        }
        self.inner.fire_hooks();
        true
    }

    /// Whether this token or any ancestor has been tripped.
    pub fn is_tripped(&self) -> bool {
        self.inner.is_tripped()
    }

    /// Whether *this* token was tripped itself (ignoring ancestors) —
    /// how a supervisor tells "this item's deadline fired" apart from
    /// "the whole sweep was cancelled".
    pub fn tripped_directly(&self) -> bool {
        self.inner.tripped.load(Ordering::Acquire)
    }

    /// The recorded trip reason (this token's, else the nearest tripped
    /// ancestor's).
    pub fn reason(&self) -> Option<String> {
        self.inner.reason()
    }

    /// The [`Cancelled`] payload for this token's current state.
    pub fn cancelled(&self) -> Cancelled {
        Cancelled { reason: self.reason().unwrap_or_else(|| "cancelled".into()) }
    }

    /// Unwind with a [`Cancelled`] payload if the token (or an
    /// ancestor) tripped. The designated checkpoint call for code
    /// holding a token. Uses `resume_unwind` rather than `panic_any` so
    /// an orderly cancellation does not invoke the panic hook (no
    /// backtrace noise for every cancelled worker); catchers see the
    /// same `Box<dyn Any>` payload either way.
    pub fn check(&self) {
        if self.is_tripped() {
            std::panic::resume_unwind(Box::new(self.cancelled()));
        }
    }

    /// Register `f` to run when the token trips (or immediately, if it
    /// already has). Hooks must be idempotent: a trip racing with
    /// registration may invoke the hook twice. The registration lasts
    /// until the returned guard is dropped.
    pub fn on_trip(&self, f: impl Fn() + Send + Sync + 'static) -> TripHookGuard {
        let id = NEXT_HOOK_ID.fetch_add(1, Ordering::Relaxed);
        self.inner
            .hooks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Hook { id, f: Box::new(f) });
        if self.is_tripped() {
            // Tripped before (or while) registering: the trip's own
            // hook pass may have missed this hook, so fire it here.
            let hooks = self.inner.hooks.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(h) = hooks.iter().find(|h| h.id == id) {
                (h.f)();
            }
        }
        TripHookGuard { inner: Arc::clone(&self.inner), id }
    }
}

/// Unregisters a trip hook on drop (see [`CancelToken::on_trip`]).
pub struct TripHookGuard {
    inner: Arc<Inner>,
    id: u64,
}

impl Drop for TripHookGuard {
    fn drop(&mut self) {
        self.inner.hooks.lock().unwrap_or_else(|e| e.into_inner()).retain(|h| h.id != self.id);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// The ambient token installed for this thread, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `token` as this thread's ambient token; the previous token is
/// restored when the returned guard drops. Pass `None` to clear.
pub fn set_current(token: Option<CancelToken>) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.replace(token));
    CurrentGuard { prev }
}

/// Restores the previously ambient token on drop (see [`set_current`]).
pub struct CurrentGuard {
    prev: Option<CancelToken>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Whether this thread's ambient token (if any) has tripped. Cheap
/// enough to poll from a wait loop.
pub fn current_is_tripped() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|t| t.is_tripped()))
}

/// Checkpoint against the ambient token: unwind with [`Cancelled`] if
/// it has tripped (via `resume_unwind`, bypassing the panic hook — see
/// [`CancelToken::check`]); no-op when no token is installed. Plan
/// interpreters and fault hooks call this between units of work.
pub fn check_current() {
    let payload =
        CURRENT.with(|c| c.borrow().as_ref().and_then(|t| t.is_tripped().then(|| t.cancelled())));
    if let Some(p) = payload {
        std::panic::resume_unwind(Box::new(p));
    }
}

/// Poll `probe` every `interval` on a background thread and trip
/// `token` with the returned reason the first time it yields `Some` —
/// the bridge from out-of-band cancellation sources (a control file
/// written by another *process*, an external flag) into the token tree.
///
/// The watcher thread exits as soon as it trips the token, the token is
/// tripped by anyone else, or the returned [`WatchGuard`] drops
/// (whichever is first), so it never outlives the scope that installed
/// it. The guard joins the thread on drop; with an `interval` of
/// milliseconds that bounds drop latency to one poll.
pub fn watch(
    token: &CancelToken,
    interval: std::time::Duration,
    probe: impl Fn() -> Option<String> + Send + 'static,
) -> WatchGuard {
    let stop = Arc::new(AtomicBool::new(false));
    let token = token.clone();
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        while !stop2.load(Ordering::Acquire) && !token.is_tripped() {
            if let Some(reason) = probe() {
                token.trip(&reason);
                return;
            }
            std::thread::sleep(interval);
        }
    });
    WatchGuard { stop, handle: Some(handle) }
}

/// Stops and joins the watcher thread on drop (see [`watch`]).
pub struct WatchGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Counted interest in one shared piece of work — the bridge between
/// many client lifetimes and one coalesced execution. `machine::serve`
/// gives every in-flight point an `InterestSet` over the flight's
/// [`CancelToken`]: each request that wants the point [`join`]s, each
/// disconnect/deadline [`release`]s (or just drops) its [`Interest`],
/// and the token trips with the set's reason only when the *last*
/// holder lets go. One live follower keeps the flight running even
/// after the leader's client died; when everyone is gone the flight
/// stops mid-plan-execution instead of simulating into the void.
///
/// Releasing is idempotent per handle and `Drop` releases, so panics
/// and early returns on the request path can never leak interest. The
/// trip fires exactly once, on the 1→0 transition; a `join` after that
/// hands out an interest in already-tripped work (the caller observes
/// it through the token, as with any tripped token).
///
/// [`join`]: InterestSet::join
/// [`release`]: Interest::release
#[derive(Clone)]
pub struct InterestSet {
    inner: Arc<InterestInner>,
}

struct InterestInner {
    token: CancelToken,
    reason: String,
    outstanding: AtomicUsize,
}

impl InterestSet {
    /// A set that trips `token` with `reason` when the last outstanding
    /// [`Interest`] releases.
    pub fn new(token: CancelToken, reason: impl Into<String>) -> InterestSet {
        InterestSet {
            inner: Arc::new(InterestInner {
                token,
                reason: reason.into(),
                outstanding: AtomicUsize::new(0),
            }),
        }
    }

    /// Register one party's interest. The returned handle releases on
    /// drop.
    pub fn join(&self) -> Interest {
        self.inner.outstanding.fetch_add(1, Ordering::AcqRel);
        Interest { set: Arc::clone(&self.inner), released: AtomicBool::new(false) }
    }

    /// Number of unreleased interests right now (racy by nature; for
    /// introspection and tests).
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Acquire)
    }

    /// The token this set trips when abandoned.
    pub fn token(&self) -> &CancelToken {
        &self.inner.token
    }
}

/// One party's stake in an [`InterestSet`]; see there.
pub struct Interest {
    set: Arc<InterestInner>,
    released: AtomicBool,
}

impl Interest {
    /// Release this stake (idempotent). The set's token trips iff this
    /// was the last outstanding interest.
    pub fn release(&self) {
        if self.released.swap(true, Ordering::AcqRel) {
            return;
        }
        if self.set.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.set.token.trip(&self.set.reason);
        }
    }
}

impl Drop for Interest {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn first_trip_wins_and_records_reason() {
        let t = CancelToken::new();
        assert!(!t.is_tripped());
        assert_eq!(t.reason(), None);
        assert!(t.trip("deadline"));
        assert!(!t.trip("second"), "second trip must report already-tripped");
        assert!(t.is_tripped());
        assert_eq!(t.reason().as_deref(), Some("deadline"));
        assert_eq!(t.cancelled().to_string(), "cancelled: deadline");
    }

    #[test]
    fn check_panics_with_cancelled_payload() {
        let t = CancelToken::new();
        t.check(); // untripped: no-op
        t.trip("stop");
        let p = std::panic::catch_unwind(|| t.check()).expect_err("must panic");
        let c = p.downcast_ref::<Cancelled>().expect("payload must be Cancelled");
        assert_eq!(c.reason, "stop");
    }

    #[test]
    fn child_chains_to_parent_but_keeps_direct_flag() {
        let parent = CancelToken::new();
        let child = parent.child();
        parent.trip("sweep cancelled");
        assert!(child.is_tripped(), "parent trip must reach the child");
        assert!(!child.tripped_directly());
        assert_eq!(child.reason().as_deref(), Some("sweep cancelled"));

        let parent2 = CancelToken::new();
        let child2 = parent2.child();
        child2.trip("point deadline");
        assert!(child2.tripped_directly());
        assert!(!parent2.is_tripped(), "child trip must not escape to the parent");
    }

    #[test]
    fn hooks_fire_on_trip_and_cascade_to_children() {
        let fired = Arc::new(AtomicUsize::new(0));
        let parent = CancelToken::new();
        let child = parent.child();
        let f1 = Arc::clone(&fired);
        let _g1 = parent.on_trip(move || {
            f1.fetch_add(1, Ordering::SeqCst);
        });
        let f2 = Arc::clone(&fired);
        let _g2 = child.on_trip(move || {
            f2.fetch_add(10, Ordering::SeqCst);
        });
        parent.trip("x");
        assert_eq!(fired.load(Ordering::SeqCst), 11, "parent and child hooks must both fire");
    }

    #[test]
    fn registering_on_tripped_token_fires_immediately() {
        let t = CancelToken::new();
        t.trip("early");
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let _g = t.on_trip(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropped_hook_guard_unregisters() {
        let fired = Arc::new(AtomicUsize::new(0));
        let t = CancelToken::new();
        let f = Arc::clone(&fired);
        drop(t.on_trip(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        t.trip("x");
        assert_eq!(fired.load(Ordering::SeqCst), 0, "dropped hook must not fire");
    }

    #[test]
    fn ambient_token_scopes_nest_and_restore() {
        assert!(current().is_none());
        let a = CancelToken::new();
        {
            let _ga = set_current(Some(a.clone()));
            assert!(current().is_some());
            check_current(); // untripped: no-op
            let b = CancelToken::new();
            {
                let _gb = set_current(Some(b.clone()));
                b.trip("inner");
                assert!(current_is_tripped());
                let p = std::panic::catch_unwind(check_current).expect_err("must panic");
                assert_eq!(p.downcast_ref::<Cancelled>().unwrap().reason, "inner");
            }
            // Inner scope gone: back to the (untripped) outer token.
            assert!(!current_is_tripped());
        }
        assert!(current().is_none());
    }

    #[test]
    fn watch_trips_token_from_out_of_band_probe() {
        let t = CancelToken::new();
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let _g = watch(&t, std::time::Duration::from_millis(1), move || {
            f.load(Ordering::Acquire).then(|| "external stop".to_string())
        });
        assert!(!t.is_tripped());
        flag.store(true, Ordering::Release);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !t.is_tripped() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(t.is_tripped());
        assert_eq!(t.reason().as_deref(), Some("external stop"));
    }

    #[test]
    fn watch_guard_drop_stops_the_poller() {
        let t = CancelToken::new();
        let polls = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&polls);
        let g = watch(&t, std::time::Duration::from_millis(1), move || {
            p.fetch_add(1, Ordering::SeqCst);
            None
        });
        drop(g); // joins: no more polls after this
        let n = polls.load(Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(polls.load(Ordering::SeqCst), n, "poller must stop when the guard drops");
        assert!(!t.is_tripped());
    }

    #[test]
    fn completed_children_are_pruned() {
        let parent = CancelToken::new();
        for _ in 0..100 {
            let c = parent.child();
            drop(c);
        }
        let _live = parent.child();
        let n = parent.inner.children.lock().unwrap().len();
        assert!(n <= 2, "dead child slots must be pruned, found {n}");
    }

    #[test]
    fn interest_trips_only_when_the_last_holder_releases() {
        let t = CancelToken::new();
        let set = InterestSet::new(t.clone(), "abandoned");
        let a = set.join();
        let b = set.join();
        assert_eq!(set.outstanding(), 2);
        a.release();
        a.release(); // idempotent: must not double-decrement
        assert!(!t.is_tripped(), "one live follower keeps the flight running");
        drop(b); // drop releases
        assert!(t.is_tripped());
        assert_eq!(t.reason().as_deref(), Some("abandoned"));
    }

    #[test]
    fn interest_drop_after_release_is_inert() {
        let t = CancelToken::new();
        let set = InterestSet::new(t.clone(), "abandoned");
        let a = set.join();
        let b = set.join();
        a.release();
        drop(a); // already released: the drop must not count again
        assert!(!t.is_tripped());
        drop(set); // the set itself holds no interest
        assert!(!t.is_tripped());
        drop(b);
        assert!(t.is_tripped());
    }

    #[test]
    fn interest_abandonment_cascades_through_the_token_tree() {
        // serve chains flight tokens off the server token; a flight
        // abandoned by all clients must stop plan execution running
        // under a *child* of the flight token.
        let server = CancelToken::new();
        let flight = server.child();
        let set = InterestSet::new(flight.clone(), "abandoned");
        let exec = flight.child();
        let only = set.join();
        drop(only);
        assert!(exec.is_tripped(), "abandonment must reach execution children");
        assert!(!server.is_tripped(), "but never the server token");
    }

    #[test]
    fn concurrent_releases_trip_exactly_once() {
        let t = CancelToken::new();
        let set = InterestSet::new(t.clone(), "abandoned");
        let handles: Vec<_> = (0..16).map(|_| set.join()).collect();
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || h.release());
            }
        });
        assert!(t.is_tripped());
        assert_eq!(set.outstanding(), 0);
    }
}
