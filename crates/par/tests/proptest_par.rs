//! Property tests for the SPMD substrate's scheduling primitives.

use pdesched_par::{parallel_for_dynamic, parallel_for_static, parallel_reduce, static_block};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Static blocks partition any range exactly, contiguously, and
    /// balanced within one item.
    #[test]
    fn static_block_partition(n in 1usize..16, total in 0usize..2000) {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        let mut sizes = Vec::new();
        for tid in 0..n {
            let r = static_block(tid, n, total);
            prop_assert_eq!(r.start, prev_end);
            prev_end = r.end;
            sizes.push(r.len());
            covered += r.len();
        }
        prop_assert_eq!(covered, total);
        prop_assert_eq!(prev_end, total);
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "imbalance {} vs {}", max, min);
    }

    /// Every parallel-for covers each index exactly once, for any
    /// thread count and chunking.
    #[test]
    fn parallel_for_exactly_once(
        n in 1usize..7,
        total in 0usize..200,
        chunk in 1usize..32,
        dynamic in any::<bool>(),
    ) {
        let hits: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
        if dynamic {
            parallel_for_dynamic(n, total, chunk, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        } else {
            parallel_for_static(n, total, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {}", i);
        }
    }

    /// Integer reductions are independent of the thread count.
    #[test]
    fn reduce_thread_count_invariant(
        n1 in 1usize..6,
        n2 in 1usize..6,
        total in 0usize..500,
    ) {
        let run = |n: usize| {
            parallel_reduce(n, total, 0u64, |i| (i as u64).wrapping_mul(2654435761), u64::wrapping_add)
        };
        prop_assert_eq!(run(n1), run(n2));
    }
}
