//! Property tests for the SPMD substrate's scheduling primitives
//! (seeded generator-driven cases; see `pdesched-testkit`).

use pdesched_par::{parallel_for_dynamic, parallel_for_static, parallel_reduce, static_block};
use pdesched_testkit::check;
use std::sync::atomic::{AtomicU32, Ordering};

/// Static blocks partition any range exactly, contiguously, and
/// balanced within one item.
#[test]
fn static_block_partition() {
    check(0x21, 48, |rng| {
        let n = rng.range_usize(1, 16);
        let total = rng.range_usize(0, 2000);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        let mut sizes = Vec::new();
        for tid in 0..n {
            let r = static_block(tid, n, total);
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
            sizes.push(r.len());
            covered += r.len();
        }
        assert_eq!(covered, total);
        assert_eq!(prev_end, total);
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "imbalance {max} vs {min}");
    });
}

/// Every parallel-for covers each index exactly once, for any
/// thread count and chunking.
#[test]
fn parallel_for_exactly_once() {
    check(0x22, 48, |rng| {
        let n = rng.range_usize(1, 7);
        let total = rng.range_usize(0, 200);
        let chunk = rng.range_usize(1, 32);
        let dynamic = rng.bool();
        let hits: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
        if dynamic {
            parallel_for_dynamic(n, total, chunk, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        } else {
            parallel_for_static(n, total, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    });
}

/// Integer reductions are independent of the thread count.
#[test]
fn reduce_thread_count_invariant() {
    check(0x23, 48, |rng| {
        let n1 = rng.range_usize(1, 6);
        let n2 = rng.range_usize(1, 6);
        let total = rng.range_usize(0, 500);
        let run = |n: usize| {
            parallel_reduce(
                n,
                total,
                0u64,
                |i| (i as u64).wrapping_mul(2654435761),
                u64::wrapping_add,
            )
        };
        assert_eq!(run(n1), run(n2));
    });
}
