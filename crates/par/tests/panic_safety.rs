//! Panic safety of the SPMD runtimes: a panicking region body must
//! surface on the caller — never deadlock the region — and leave the
//! pool usable for subsequent regions. Each scenario runs under a
//! watchdog so a reintroduced deadlock fails the test instead of
//! hanging the suite.
//!
//! Expected panic messages ("boom-…") appearing in this test's stderr
//! are injected faults, not failures.

use pdesched_par::{spmd, SpmdPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fail (not hang) if `f` does not finish within the test timeout.
fn within_timeout(name: &'static str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let _ = tx.send(r);
        })
        .expect("spawn watchdog");
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(Ok(())) => {}
        Ok(Err(payload)) => std::panic::resume_unwind(payload),
        Err(_) => panic!("{name}: scenario deadlocked (timeout)"),
    }
}

/// The panic payload's message, for asserting which panic propagated.
fn message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        format!("{payload:?}")
    }
}

/// After a panic, the pool must still run ordinary regions correctly.
fn assert_pool_still_works(pool: &SpmdPool) {
    for _ in 0..3 {
        let seen = AtomicU64::new(0);
        pool.run(|ctx| {
            seen.fetch_or(1 << ctx.tid(), Ordering::SeqCst);
            ctx.barrier();
        });
        assert_eq!(seen.load(Ordering::SeqCst), (1u64 << pool.nthreads()) - 1);
    }
}

#[test]
fn panic_on_caller_thread_propagates() {
    within_timeout("caller-panic", || {
        for n in [1usize, 2, 8] {
            let pool = SpmdPool::new(n);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|ctx| {
                    if ctx.tid() == 0 {
                        panic!("boom-caller-{n}");
                    }
                    // Peers park at the barrier the dead thread never
                    // reaches.
                    ctx.barrier();
                });
            }));
            let payload = r.expect_err("caller panic must propagate");
            assert_eq!(message(payload.as_ref()), format!("boom-caller-{n}"));
            assert_pool_still_works(&pool);
        }
    });
}

#[test]
fn panic_on_worker_thread_propagates() {
    within_timeout("worker-panic", || {
        for n in [2usize, 8] {
            let pool = SpmdPool::new(n);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|ctx| {
                    if ctx.tid() == 1 {
                        panic!("boom-worker-{n}");
                    }
                    ctx.barrier();
                });
            }));
            let payload = r.expect_err("worker panic must surface on the caller");
            assert_eq!(message(payload.as_ref()), format!("boom-worker-{n}"));
            assert_pool_still_works(&pool);
        }
    });
}

#[test]
fn panic_with_peers_blocked_at_barrier_propagates() {
    within_timeout("barrier-panic", || {
        for n in [2usize, 8] {
            let pool = SpmdPool::new(n);
            let reached = AtomicU64::new(0);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|ctx| {
                    if ctx.tid() == ctx.nthreads() - 1 {
                        // Give peers time to actually block in wait().
                        while reached.load(Ordering::SeqCst) + 1 < ctx.nthreads() as u64 {
                            std::hint::spin_loop();
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        panic!("boom-at-barrier-{n}");
                    }
                    reached.fetch_add(1, Ordering::SeqCst);
                    ctx.barrier();
                });
            }));
            let payload = r.expect_err("panic at barrier must not deadlock");
            assert_eq!(message(payload.as_ref()), format!("boom-at-barrier-{n}"));
            assert_pool_still_works(&pool);
        }
    });
}

#[test]
fn pool_survives_repeated_panicking_regions() {
    within_timeout("repeated-panics", || {
        let pool = SpmdPool::new(4);
        for round in 0..5u64 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|ctx| {
                    if ctx.tid() as u64 == round % 4 {
                        panic!("boom-round-{round}");
                    }
                    ctx.barrier();
                });
            }));
            assert_eq!(
                message(r.expect_err("must propagate").as_ref()),
                format!("boom-round-{round}")
            );
            // Interleave a healthy region between faulty ones.
            assert_pool_still_works(&pool);
        }
    });
}

#[test]
fn only_first_panic_payload_is_reported() {
    within_timeout("first-payload", || {
        let pool = SpmdPool::new(4);
        // Every thread panics; exactly one payload (a real one, never the
        // internal barrier-abort sentinel) must reach the caller.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|ctx| {
                panic!("boom-everyone-{}", ctx.tid());
            });
        }));
        let msg = message(r.expect_err("must propagate").as_ref());
        assert!(msg.starts_with("boom-everyone-"), "unexpected payload: {msg}");
        assert_pool_still_works(&pool);
    });
}

#[test]
fn spmd_region_panic_propagates_without_deadlock() {
    within_timeout("spmd-panic", || {
        for n in [1usize, 2, 8] {
            let r = std::panic::catch_unwind(|| {
                spmd(n, |ctx| {
                    if ctx.tid() == n - 1 {
                        panic!("boom-spmd-{n}");
                    }
                    ctx.barrier();
                });
            });
            let payload = r.expect_err("spmd panic must propagate");
            assert_eq!(message(payload.as_ref()), format!("boom-spmd-{n}"));
        }
    });
}

#[test]
fn panicking_dynamic_schedule_leaves_counter_consistent() {
    within_timeout("dynamic-panic", || {
        let pool = SpmdPool::new(4);
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let done = AtomicU64::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|ctx| {
                ctx.dynamic_items(&counter, 64, 1, |i| {
                    if i == 13 {
                        panic!("boom-item-13");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert_eq!(message(r.expect_err("must propagate").as_ref()), "boom-item-13");
        // Survivors kept draining items; nothing hung.
        assert!(done.load(Ordering::SeqCst) <= 63);
        assert_pool_still_works(&pool);
    });
}
