//! Cooperative cancellation of SPMD regions: a tripped token must wake
//! every thread blocked at a region barrier (no deadlock), surface as an
//! orderly `Err(Cancelled)` / `Cancelled` panic rather than a failure,
//! lose to real panics, and leave the pool fully reusable. Each scenario
//! runs under a watchdog so a reintroduced deadlock fails fast.
//!
//! Expected panic messages ("boom-…") appearing in this test's stderr
//! are injected faults, not failures.

use pdesched_par::cancel::{self, CancelToken, Cancelled};
use pdesched_par::{spmd, SpmdPool};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Fail (not hang) if `f` does not finish within the test timeout.
fn within_timeout(name: &'static str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let _ = tx.send(r);
        })
        .expect("spawn watchdog");
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(Ok(())) => {}
        Ok(Err(payload)) => std::panic::resume_unwind(payload),
        Err(_) => panic!("{name}: scenario deadlocked (timeout)"),
    }
}

/// After a cancellation, the pool must still run ordinary regions.
fn assert_pool_still_works(pool: &SpmdPool) {
    for _ in 0..3 {
        let seen = AtomicU64::new(0);
        pool.run(|ctx| {
            seen.fetch_or(1 << ctx.tid(), Ordering::SeqCst);
            ctx.barrier();
        });
        assert_eq!(seen.load(Ordering::SeqCst), (1u64 << pool.nthreads()) - 1);
    }
}

#[test]
fn pre_tripped_token_refuses_to_start() {
    within_timeout("pre-tripped", || {
        for n in [1usize, 2, 4] {
            let pool = SpmdPool::new(n);
            let token = CancelToken::new();
            token.trip("called off");
            let ran = AtomicU64::new(0);
            let r = pool.run_cancellable(&token, |_ctx| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(r, Err(Cancelled { reason: "called off".into() }), "n={n}");
            assert_eq!(ran.load(Ordering::SeqCst), 0, "body must never start (n={n})");
            assert_pool_still_works(&pool);
        }
    });
}

#[test]
fn trip_mid_wavefront_wakes_all_barrier_waiters() {
    within_timeout("mid-wavefront", || {
        for n in [2usize, 4, 8] {
            let pool = SpmdPool::new(n);
            let token = CancelToken::new();
            let waiting = AtomicUsize::new(0);
            let t2 = token.clone();
            let r = pool.run_cancellable(&token, |ctx| {
                if ctx.tid() == 0 {
                    // Trip only once every peer is provably parked at the
                    // barrier this thread never reaches.
                    while waiting.load(Ordering::SeqCst) < ctx.nthreads() - 1 {
                        std::hint::spin_loop();
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    t2.trip("deadline expired");
                    cancel::check_current();
                    unreachable!("check_current must unwind on a tripped token");
                }
                waiting.fetch_add(1, Ordering::SeqCst);
                // Wavefront phase barrier: completes only if the trip
                // wakes us, because thread 0 never arrives.
                ctx.barrier();
            });
            assert_eq!(r, Err(Cancelled { reason: "deadline expired".into() }), "n={n}");
            assert_pool_still_works(&pool);
        }
    });
}

#[test]
fn external_trip_interrupts_barrier_phase_loop() {
    // The watchdog-thread shape used by the sweep supervisor: all region
    // threads cycle through barrier phases while an *outside* thread
    // trips the token at an arbitrary moment.
    within_timeout("external-trip", || {
        let pool = SpmdPool::new(4);
        let token = CancelToken::new();
        let tripper = {
            let t = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                t.trip("watchdog");
            })
        };
        let phases = AtomicU64::new(0);
        let r = pool.run_cancellable(&token, |ctx| loop {
            cancel::check_current();
            phases.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
        });
        tripper.join().unwrap();
        assert_eq!(r, Err(Cancelled { reason: "watchdog".into() }));
        assert!(phases.load(Ordering::SeqCst) > 0, "region must have been genuinely running");
        assert_pool_still_works(&pool);
    });
}

#[test]
fn pool_reusable_with_cancellable_regions_after_cancel() {
    within_timeout("reuse-after-cancel", || {
        let pool = SpmdPool::new(4);
        for round in 0..3 {
            let token = CancelToken::new();
            let t2 = token.clone();
            let r = pool.run_cancellable(&token, |ctx| {
                if ctx.tid() == 0 {
                    t2.trip("round over");
                }
                cancel::check_current();
                ctx.barrier();
            });
            assert!(r.is_err(), "round {round} must report cancellation");
            // A fresh token must run to completion on the same pool.
            let ok_token = CancelToken::new();
            let seen = AtomicU64::new(0);
            let r2 = pool.run_cancellable(&ok_token, |ctx| {
                seen.fetch_or(1 << ctx.tid(), Ordering::SeqCst);
                ctx.barrier();
            });
            assert_eq!(r2, Ok(()));
            assert_eq!(seen.load(Ordering::SeqCst), 0b1111);
        }
        assert_pool_still_works(&pool);
    });
}

#[test]
fn real_panic_outranks_cancellation() {
    within_timeout("panic-beats-cancel", || {
        let pool = SpmdPool::new(4);
        let token = CancelToken::new();
        let t2 = token.clone();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_cancellable(&token, |ctx| {
                if ctx.tid() == 1 {
                    panic!("boom-real-failure");
                }
                if ctx.tid() == 0 {
                    t2.trip("also cancelled");
                    cancel::check_current();
                }
                ctx.barrier();
            })
        }));
        // Whatever the interleaving, the genuine failure must surface as
        // a panic — never be masked by the orderly Err(Cancelled).
        let payload = r.expect_err("real panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| format!("{payload:?}"));
        assert_eq!(msg, "boom-real-failure");
        assert_pool_still_works(&pool);
    });
}

#[test]
fn single_thread_pool_cancels_at_checkpoints() {
    within_timeout("single-thread", || {
        let pool = SpmdPool::new(1);
        let token = CancelToken::new();
        let t2 = token.clone();
        let items = AtomicUsize::new(0);
        let r = pool.run_cancellable(&token, |_ctx| {
            for i in 0..100 {
                cancel::check_current();
                items.fetch_add(1, Ordering::SeqCst);
                if i == 4 {
                    t2.trip("enough");
                }
            }
        });
        assert_eq!(r, Err(Cancelled { reason: "enough".into() }));
        assert_eq!(items.load(Ordering::SeqCst), 5, "work must stop at the next checkpoint");
        assert_pool_still_works(&pool);
    });
}

#[test]
fn spmd_forwards_ambient_token_into_region_threads() {
    within_timeout("spmd-ambient", || {
        for n in [2usize, 4] {
            let token = CancelToken::new();
            let _ambient = cancel::set_current(Some(token.clone()));
            let t2 = token.clone();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                spmd(n, |ctx| {
                    if ctx.tid() == 0 {
                        t2.trip("ambient trip");
                        // The region threads are new OS threads: the token
                        // must have been forwarded for this to unwind.
                        cancel::check_current();
                        unreachable!();
                    }
                    ctx.barrier();
                });
            }));
            let payload = r.expect_err("cancelled spmd region must panic");
            let c = payload.downcast_ref::<Cancelled>().expect("payload must be Cancelled");
            assert_eq!(c.reason, "ambient trip", "n={n}");
        }
    });
}

#[test]
fn spmd_with_pre_tripped_ambient_token_refuses_to_start() {
    within_timeout("spmd-pre-tripped", || {
        for n in [1usize, 4] {
            let token = CancelToken::new();
            token.trip("too late");
            let _ambient = cancel::set_current(Some(token));
            let ran = AtomicU64::new(0);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                spmd(n, |_ctx| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }));
            let payload = r.expect_err("must refuse to start");
            assert!(payload.is::<Cancelled>());
            assert_eq!(ran.load(Ordering::SeqCst), 0, "n={n}");
        }
    });
}

#[test]
fn child_token_trip_cancels_region_but_not_parent() {
    within_timeout("child-trip", || {
        let pool = SpmdPool::new(2);
        let sweep = CancelToken::new();
        let point = sweep.child();
        let p2 = point.clone();
        let r = pool.run_cancellable(&point, |ctx| {
            if ctx.tid() == 0 {
                p2.trip("point deadline");
                cancel::check_current();
            }
            ctx.barrier();
        });
        assert_eq!(r, Err(Cancelled { reason: "point deadline".into() }));
        assert!(point.tripped_directly());
        assert!(!sweep.is_tripped(), "a point deadline must not cancel the sweep");
        // The sweep token still supervises further regions normally.
        let next = sweep.child();
        let r2 = pool.run_cancellable(&next, |ctx| ctx.barrier());
        assert_eq!(r2, Ok(()));
    });
}

#[test]
fn dynamic_schedule_drains_no_items_after_trip_checkpoint() {
    within_timeout("dynamic-cancel", || {
        let pool = SpmdPool::new(4);
        let token = CancelToken::new();
        let t2 = token.clone();
        let counter = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let r = pool.run_cancellable(&token, |ctx| {
            ctx.dynamic_items(&counter, 1000, 1, |i| {
                cancel::check_current();
                done.fetch_add(1, Ordering::SeqCst);
                if i == 100 {
                    t2.trip("mid-sweep");
                }
            });
        });
        assert!(r.is_err());
        let drained = done.load(Ordering::SeqCst);
        // Each thread stops at its next per-item checkpoint: at most
        // nthreads items complete after the trip.
        assert!(drained <= 100 + pool.nthreads() + 1, "drained {drained} items after trip");
        assert_pool_still_works(&pool);
    });
}
