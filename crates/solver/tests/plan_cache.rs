//! Solver time loops lower once per box shape: after the first step the
//! plan cache serves every subsequent step, and the cached plans produce
//! bitwise-identical trajectories to cold lowerings.

use pdesched_core::{plan, CompLoop, Variant};
use pdesched_mesh::{DisjointBoxLayout, IBox, ProblemDomain};
use pdesched_solver::{AdvectionSolver, SolverConfig, TimeIntegrator};
use std::sync::Mutex;

/// The plan cache and its hit/miss counters are process-wide; serialize
/// the tests in this binary so the stats assertions are meaningful.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn run(variant: Variant, nthreads: usize, steps: u64) -> AdvectionSolver {
    let layout = DisjointBoxLayout::uniform(ProblemDomain::periodic(IBox::cube(16)), 8);
    let cfg = SolverConfig {
        variant,
        nthreads,
        integrator: TimeIntegrator::Rk2,
        ..SolverConfig::default()
    };
    let mut s = AdvectionSolver::new(layout, cfg, 901);
    s.run(steps);
    s
}

#[test]
fn warm_solver_matches_cold_solver_bitwise() {
    let _g = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for variant in [
        Variant::baseline(),
        Variant::shift_fuse(),
        Variant::blocked_wavefront(CompLoop::Inside, 4),
    ] {
        plan::clear_cache();
        let cold = run(variant, 2, 5);
        let (_, cold_misses, _) = plan::cache_stats();
        assert!(cold_misses > 0, "{variant}: first run must lower");
        let warm = run(variant, 2, 5);
        let (hits, misses, _) = plan::cache_stats();
        assert!(hits > 0, "{variant}: second run must hit the plan cache");
        assert_eq!(misses, cold_misses, "{variant}: second run must not re-lower");
        for i in 0..cold.state().num_boxes() {
            assert!(
                warm.state().fab(i).bit_eq(cold.state().fab(i), cold.state().valid_box(i)),
                "{variant}: box {i} diverged between cold and warm plans"
            );
        }
    }
}

#[test]
fn time_loop_lowers_once_per_shape() {
    let _g = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    plan::clear_cache();
    run(Variant::blocked_wavefront(CompLoop::Outside, 4), 3, 8);
    let (hits, misses, entries) = plan::cache_stats();
    // One 8^3 box shape, one variant, one thread count: a single
    // lowering, then hits for all the remaining (box, stage, step)
    // executions.
    assert_eq!(misses, 1, "one shape must lower exactly once");
    assert_eq!(entries, 1);
    // 8 boxes x 2 RK stages x 8 steps = 128 executions, 127 from cache.
    assert_eq!(hits, 127);
}
