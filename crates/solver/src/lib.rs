//! A time-dependent finite-volume solver built on the schedule
//! executors.
//!
//! Every structured-grid PDE code has the same skeleton (paper
//! Section II): initialize, then per time step exchange ghost cells and
//! run the stencil kernels on every box. This crate provides that
//! skeleton around the exemplar's flux kernel, turning the paper's
//! benchmark into a runnable solver:
//!
//! ```text
//! phi^{n+1} = phi^n - (dt/dx) * div F(phi^n)        (forward Euler)
//! ```
//!
//! or the two-stage midpoint method ([`TimeIntegrator::Rk2`]). The flux
//! divergence is computed by whichever schedule [`Variant`] the solver
//! is configured with — all variants produce bitwise-identical states,
//! so the schedule is purely a performance choice, exactly the paper's
//! premise.
//!
//! Because the flux telescopes over a periodic domain, the total of each
//! component is conserved to rounding; [`AdvectionSolver::totals`]
//! exposes it and the tests enforce it.

pub mod diag;

use pdesched_core::{run_level, NoMem, Variant};
use pdesched_kernels::{GHOST, NCOMP};
use pdesched_mesh::{fill_domain_ghosts, BcSet, DisjointBoxLayout, IntVect, LevelData};

/// Time integration scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeIntegrator {
    /// Forward Euler: one flux evaluation per step.
    Euler,
    /// Explicit midpoint (RK2): two flux evaluations per step.
    Rk2,
    /// Classical fourth-order Runge-Kutta: four flux evaluations per
    /// step — the time order matching the 4th-order spatial
    /// interpolation (paper Section I's "fourth-order and higher
    /// schemes").
    Rk4,
}

impl TimeIntegrator {
    /// Flux evaluations per step.
    pub fn stages(self) -> usize {
        match self {
            TimeIntegrator::Euler => 1,
            TimeIntegrator::Rk2 => 2,
            TimeIntegrator::Rk4 => 4,
        }
    }
}

/// Configuration for [`AdvectionSolver`].
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Schedule variant used for the flux kernel.
    pub variant: Variant,
    /// Threads handed to the schedule executor.
    pub nthreads: usize,
    /// `dt / dx` (the update scale; the exemplar is non-dimensional).
    pub dt_dx: f64,
    /// Integrator.
    pub integrator: TimeIntegrator,
    /// Boundary conditions for non-periodic domain directions, applied
    /// after every ghost exchange. `None` requires a fully periodic
    /// domain.
    pub bcs: Option<BcSet>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            variant: Variant::baseline(),
            nthreads: 1,
            dt_dx: 1e-3,
            integrator: TimeIntegrator::Euler,
            bcs: None,
        }
    }
}

/// The solver: owns the solution level and scratch storage.
pub struct AdvectionSolver {
    cfg: SolverConfig,
    phi: LevelData,
    /// Flux divergence accumulator (no ghosts).
    div: LevelData,
    /// Midpoint stage for RK2 (with ghosts); allocated lazily.
    mid: Option<LevelData>,
    step: u64,
    time: f64,
}

impl AdvectionSolver {
    /// Create a solver over `layout` with the solution initialized by
    /// the deterministic synthetic field (strictly positive, O(1)).
    pub fn new(layout: DisjointBoxLayout, cfg: SolverConfig, seed: u64) -> Self {
        assert!(
            cfg.bcs.is_some() || layout.problem().fully_periodic(),
            "non-periodic domains need boundary conditions"
        );
        let mut phi = LevelData::new(layout.clone(), NCOMP, GHOST);
        phi.fill_synthetic(seed);
        let div = LevelData::new(layout, NCOMP, 0);
        AdvectionSolver { cfg, phi, div, mid: None, step: 0, time: 0.0 }
    }

    /// Create a solver with externally prepared initial data.
    pub fn from_state(phi: LevelData, cfg: SolverConfig) -> Self {
        assert!(phi.ghost() >= GHOST, "solution needs {GHOST} ghost layers");
        assert_eq!(phi.ncomp(), NCOMP);
        assert!(
            cfg.bcs.is_some() || phi.layout().problem().fully_periodic(),
            "non-periodic domains need boundary conditions"
        );
        let div = LevelData::new(phi.layout().clone(), NCOMP, 0);
        AdvectionSolver { cfg, phi, div, mid: None, step: 0, time: 0.0 }
    }

    /// Current solution.
    pub fn state(&self) -> &LevelData {
        &self.phi
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Simulated time (`step * dt_dx`, in units of `dx`).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Total of each component over the valid region — conserved to
    /// rounding on a fully periodic domain.
    pub fn totals(&self) -> [f64; NCOMP] {
        let mut t = [0.0; NCOMP];
        for (c, tc) in t.iter_mut().enumerate() {
            *tc = self.phi.sum_comp(c);
        }
        t
    }

    /// Evaluate `div F(src)` into `self.div` (zeroed first): exchange,
    /// apply domain boundary conditions, run the configured schedule.
    fn eval_div(cfg: &SolverConfig, src: &mut LevelData, div: &mut LevelData) {
        src.exchange();
        if let Some(bcs) = &cfg.bcs {
            fill_domain_ghosts(src, bcs);
        }
        div.set_val(0.0);
        run_level(cfg.variant, src, div, cfg.nthreads, &NoMem);
    }

    /// `dst -= scale * div` over valid cells.
    fn apply_update(dst: &mut LevelData, div: &LevelData, scale: f64) {
        for i in 0..dst.num_boxes() {
            let vb = dst.valid_box(i);
            let (lo, hi) = (vb.lo(), vb.hi());
            let src = div.fab(i);
            let fab = dst.fab_mut(i);
            for c in 0..NCOMP {
                for z in lo[2]..=hi[2] {
                    for y in lo[1]..=hi[1] {
                        let di = fab.index(IntVect::new(lo[0], y, z), c);
                        let si = src.index(IntVect::new(lo[0], y, z), c);
                        let nx = (hi[0] - lo[0] + 1) as usize;
                        for k in 0..nx {
                            fab.data_mut()[di + k] -= scale * src.data()[si + k];
                        }
                    }
                }
            }
        }
    }

    /// Copy `src`'s valid data into `dst`'s valid region (ghosts left to
    /// the next exchange).
    fn copy_valid(dst: &mut LevelData, src: &LevelData) {
        for i in 0..dst.num_boxes() {
            let vb = dst.valid_box(i);
            let sfab = src.fab(i).clone();
            dst.fab_mut(i).copy_from(&sfab, vb);
        }
    }

    /// `dst += w * src` over valid cells (both without ghost
    /// requirements).
    fn axpy_valid(dst: &mut LevelData, src: &LevelData, w: f64) {
        for i in 0..dst.num_boxes() {
            let vb = dst.valid_box(i);
            let (lo, hi) = (vb.lo(), vb.hi());
            let sfab = src.fab(i);
            let dfab = dst.fab_mut(i);
            for c in 0..NCOMP {
                for z in lo[2]..=hi[2] {
                    for y in lo[1]..=hi[1] {
                        let di = dfab.index(IntVect::new(lo[0], y, z), c);
                        let si = sfab.index(IntVect::new(lo[0], y, z), c);
                        let nx = (hi[0] - lo[0] + 1) as usize;
                        for k in 0..nx {
                            dfab.data_mut()[di + k] += w * sfab.data()[si + k];
                        }
                    }
                }
            }
        }
    }

    fn ensure_mid(&mut self) {
        if self.mid.is_none() {
            self.mid = Some(LevelData::new(self.phi.layout().clone(), NCOMP, GHOST));
        }
    }

    /// Advance one time step.
    pub fn advance(&mut self) {
        match self.cfg.integrator {
            TimeIntegrator::Euler => {
                Self::eval_div(&self.cfg, &mut self.phi, &mut self.div);
                Self::apply_update(&mut self.phi, &self.div, self.cfg.dt_dx);
            }
            TimeIntegrator::Rk2 => {
                // Stage 1: mid = phi - (dt/2) div F(phi).
                Self::eval_div(&self.cfg, &mut self.phi, &mut self.div);
                self.ensure_mid();
                let mid = self.mid.as_mut().unwrap();
                Self::copy_valid(mid, &self.phi);
                Self::apply_update(mid, &self.div, 0.5 * self.cfg.dt_dx);
                // Stage 2: phi -= dt * div F(mid).
                Self::eval_div(&self.cfg, mid, &mut self.div);
                Self::apply_update(&mut self.phi, &self.div, self.cfg.dt_dx);
            }
            TimeIntegrator::Rk4 => {
                // Classical RK4 on phi' = -div F(phi):
                // phi += -(dt/6)(k1 + 2 k2 + 2 k3 + k4).
                let s = self.cfg.dt_dx;
                self.ensure_mid();
                let mut ksum = LevelData::new(self.phi.layout().clone(), NCOMP, 0);
                // k1
                Self::eval_div(&self.cfg, &mut self.phi, &mut self.div);
                Self::axpy_valid(&mut ksum, &self.div, 1.0);
                // k2 at phi - (s/2) k1
                let mid = self.mid.as_mut().unwrap();
                Self::copy_valid(mid, &self.phi);
                Self::apply_update(mid, &self.div, 0.5 * s);
                Self::eval_div(&self.cfg, mid, &mut self.div);
                Self::axpy_valid(&mut ksum, &self.div, 2.0);
                // k3 at phi - (s/2) k2
                let mid = self.mid.as_mut().unwrap();
                Self::copy_valid(mid, &self.phi);
                Self::apply_update(mid, &self.div, 0.5 * s);
                Self::eval_div(&self.cfg, mid, &mut self.div);
                Self::axpy_valid(&mut ksum, &self.div, 2.0);
                // k4 at phi - s k3
                let mid = self.mid.as_mut().unwrap();
                Self::copy_valid(mid, &self.phi);
                Self::apply_update(mid, &self.div, s);
                Self::eval_div(&self.cfg, mid, &mut self.div);
                Self::axpy_valid(&mut ksum, &self.div, 1.0);
                // Combine.
                Self::apply_update(&mut self.phi, &ksum, s / 6.0);
            }
        }
        self.step += 1;
        self.time += self.cfg.dt_dx;
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.advance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdesched_core::{CompLoop, Granularity, IntraTile};
    use pdesched_mesh::{IBox, ProblemDomain};

    fn layout(n: i32, bs: i32) -> DisjointBoxLayout {
        DisjointBoxLayout::uniform(ProblemDomain::periodic(IBox::cube(n)), bs)
    }

    #[test]
    fn conservation_over_steps_euler() {
        let mut s = AdvectionSolver::new(layout(16, 8), SolverConfig::default(), 5);
        let before = s.totals();
        s.run(5);
        let after = s.totals();
        for c in 0..NCOMP {
            let scale = before[c].abs().max(1.0);
            assert!(
                (after[c] - before[c]).abs() < 1e-9 * scale,
                "component {c}: {} -> {}",
                before[c],
                after[c]
            );
        }
        assert_eq!(s.step_count(), 5);
        assert!((s.time() - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn conservation_over_steps_rk2() {
        let cfg = SolverConfig { integrator: TimeIntegrator::Rk2, ..Default::default() };
        let mut s = AdvectionSolver::new(layout(16, 8), cfg, 6);
        let before = s.totals();
        s.run(3);
        let after = s.totals();
        for c in 0..NCOMP {
            assert!((after[c] - before[c]).abs() < 1e-9 * before[c].abs().max(1.0));
        }
    }

    #[test]
    fn schedule_choice_does_not_change_the_solution() {
        // The solver premise: any schedule variant, any thread count,
        // bitwise the same trajectory.
        let reference = {
            let mut s = AdvectionSolver::new(layout(16, 8), SolverConfig::default(), 7);
            s.run(3);
            s
        };
        let variants = [
            SolverConfig { variant: Variant::shift_fuse(), nthreads: 3, ..Default::default() },
            SolverConfig {
                variant: Variant::blocked_wavefront(CompLoop::Inside, 4),
                nthreads: 2,
                ..Default::default()
            },
            SolverConfig {
                variant: Variant::overlapped(IntraTile::ShiftFuse, 4, Granularity::WithinBox),
                nthreads: 4,
                ..Default::default()
            },
        ];
        for cfg in variants {
            let label = cfg.variant.to_string();
            let mut s = AdvectionSolver::new(layout(16, 8), cfg, 7);
            s.run(3);
            for i in 0..s.state().num_boxes() {
                assert!(
                    s.state().fab(i).bit_eq(reference.state().fab(i), s.state().valid_box(i)),
                    "{label} diverged at box {i}"
                );
            }
        }
    }

    #[test]
    fn rk2_differs_from_euler() {
        let mut e = AdvectionSolver::new(layout(8, 8), SolverConfig::default(), 9);
        let cfg = SolverConfig { integrator: TimeIntegrator::Rk2, ..Default::default() };
        let mut r = AdvectionSolver::new(layout(8, 8), cfg, 9);
        e.run(2);
        r.run(2);
        let any_diff = (0..e.state().num_boxes())
            .any(|i| !e.state().fab(i).bit_eq(r.state().fab(i), e.state().valid_box(i)));
        assert!(any_diff, "RK2 must not equal Euler");
    }

    #[test]
    fn solution_stays_finite() {
        let cfg = SolverConfig { dt_dx: 1e-3, ..Default::default() };
        let mut s = AdvectionSolver::new(layout(8, 4), cfg, 11);
        s.run(20);
        for i in 0..s.state().num_boxes() {
            assert!(s.state().fab(i).data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn rk4_conserves_and_differs_from_rk2() {
        let cfg4 = SolverConfig { integrator: TimeIntegrator::Rk4, ..Default::default() };
        let mut s4 = AdvectionSolver::new(layout(8, 8), cfg4, 13);
        let before = s4.totals();
        s4.run(2);
        for (c, b) in before.iter().enumerate().take(NCOMP) {
            assert!((s4.totals()[c] - b).abs() < 1e-9 * b.abs().max(1.0));
        }
        let cfg2 = SolverConfig { integrator: TimeIntegrator::Rk2, ..Default::default() };
        let mut s2 = AdvectionSolver::new(layout(8, 8), cfg2, 13);
        s2.run(2);
        let diff = diag::max_difference(s4.state(), s2.state());
        assert!(diff > 0.0, "RK4 must differ from RK2");
        assert!(diff < 1e-3, "but only at high order: {diff}");
        assert_eq!(TimeIntegrator::Rk4.stages(), 4);
    }

    #[test]
    fn rk4_converges_faster_than_euler() {
        // Against a fine-step RK4 "truth", a coarse RK4 step must be far
        // more accurate than a coarse Euler step.
        let truth = {
            let cfg = SolverConfig {
                integrator: TimeIntegrator::Rk4,
                dt_dx: 2.5e-3,
                ..Default::default()
            };
            let mut s = AdvectionSolver::new(layout(8, 8), cfg, 15);
            s.run(8);
            s
        };
        let coarse = |integ: TimeIntegrator| {
            let cfg = SolverConfig { integrator: integ, dt_dx: 2e-2, ..Default::default() };
            let mut s = AdvectionSolver::new(layout(8, 8), cfg, 15);
            s.run(1);
            diag::max_difference(s.state(), truth.state())
        };
        let e_euler = coarse(TimeIntegrator::Euler);
        let e_rk4 = coarse(TimeIntegrator::Rk4);
        assert!(e_rk4 < e_euler / 10.0, "rk4 error {e_rk4} not ≪ euler error {e_euler}");
    }

    #[test]
    fn non_periodic_constant_field_is_fixed_point() {
        // With zero-gradient BCs, a constant field has constant face
        // interpolants and fluxes, so the divergence vanishes and the
        // solution never changes.
        use pdesched_mesh::{BcSet, BcType, IntVect, ProblemDomain};
        let lay = DisjointBoxLayout::uniform(ProblemDomain::new(IBox::cube(8)), 8);
        let cfg =
            SolverConfig { bcs: Some(BcSet::uniform(BcType::ZeroGradient)), ..Default::default() };
        let mut phi = LevelData::new(lay.clone(), NCOMP, GHOST);
        phi.set_val(1.5);
        let mut s = AdvectionSolver::from_state(phi, cfg);
        s.run(3);
        for iv in IBox::cube(8).iter() {
            for c in 0..NCOMP {
                assert_eq!(s.state().fab(0).at(iv, c), 1.5, "{iv:?} {c}");
            }
        }
        let _ = IntVect::ZERO;
    }

    #[test]
    fn from_state_rejects_ghostless_data() {
        let phi = LevelData::new(layout(8, 8), NCOMP, 0);
        let result =
            std::panic::catch_unwind(|| AdvectionSolver::from_state(phi, SolverConfig::default()));
        assert!(result.is_err());
    }
}
