//! Run diagnostics: norms, conservation drift, step-timing summary.

use pdesched_mesh::LevelData;

/// Norms of one component over a level's valid region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Norms {
    /// Mean absolute value (L1 / cell count).
    pub l1: f64,
    /// Root mean square.
    pub l2: f64,
    /// Max absolute value.
    pub linf: f64,
}

/// Compute the L1/L2/L∞ norms of component `c` over the valid region.
pub fn norms(ld: &LevelData, c: usize) -> Norms {
    let mut sum_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut max_abs = 0.0f64;
    let mut count = 0usize;
    for i in 0..ld.num_boxes() {
        let vb = ld.valid_box(i);
        let fab = ld.fab(i);
        for iv in vb.iter() {
            let v = fab.at(iv, c);
            sum_abs += v.abs();
            sum_sq += v * v;
            max_abs = max_abs.max(v.abs());
            count += 1;
        }
    }
    let n = count.max(1) as f64;
    Norms { l1: sum_abs / n, l2: (sum_sq / n).sqrt(), linf: max_abs }
}

/// Max-norm of the pointwise difference of two levels over their valid
/// regions, across all components.
pub fn max_difference(a: &LevelData, b: &LevelData) -> f64 {
    assert_eq!(a.num_boxes(), b.num_boxes());
    let mut m = 0.0f64;
    for i in 0..a.num_boxes() {
        m = m.max(a.fab(i).max_diff(b.fab(i), a.valid_box(i)));
    }
    m
}

/// A lightweight time-per-step recorder.
#[derive(Clone, Debug, Default)]
pub struct StepTimer {
    samples: Vec<f64>,
}

impl StepTimer {
    /// Fresh timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one step duration in seconds.
    pub fn record(&mut self, seconds: f64) {
        self.samples.push(seconds);
    }

    /// Number of recorded steps.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean seconds per step.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum (best) step time.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum (worst) step time.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdesched_mesh::{DisjointBoxLayout, IBox, IntVect, ProblemDomain};

    fn level_with(v: f64) -> LevelData {
        let layout = DisjointBoxLayout::uniform(ProblemDomain::periodic(IBox::cube(8)), 4);
        let mut ld = LevelData::new(layout, 2, 0);
        ld.set_val(v);
        ld
    }

    #[test]
    fn norms_of_constant_field() {
        let ld = level_with(-3.0);
        let n = norms(&ld, 0);
        assert_eq!(n.l1, 3.0);
        assert_eq!(n.l2, 3.0);
        assert_eq!(n.linf, 3.0);
    }

    #[test]
    fn norms_of_spike() {
        let mut ld = level_with(0.0);
        ld.fab_mut(0).set(IntVect::new(1, 1, 1), 0, 4.0);
        let n = norms(&ld, 0);
        assert_eq!(n.linf, 4.0);
        assert!((n.l1 - 4.0 / 512.0).abs() < 1e-15);
        assert!((n.l2 - (16.0 / 512.0f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn max_difference_detects_change() {
        let a = level_with(1.0);
        let mut b = level_with(1.0);
        assert_eq!(max_difference(&a, &b), 0.0);
        let at = b.valid_box(3).lo();
        b.fab_mut(3).set(at, 1, 2.5);
        assert_eq!(max_difference(&a, &b), 1.5);
    }

    #[test]
    fn step_timer_stats() {
        let mut t = StepTimer::new();
        for s in [0.2, 0.1, 0.3] {
            t.record(s);
        }
        assert_eq!(t.count(), 3);
        assert!((t.mean() - 0.2).abs() < 1e-15);
        assert_eq!(t.min(), 0.1);
        assert_eq!(t.max(), 0.3);
    }
}
