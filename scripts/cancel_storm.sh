#!/usr/bin/env bash
# Cancel storm: repeatedly SIGINT a supervised `repro` run at randomized
# delays, then resume once without interference. Verifies the paper's
# invariant that interruption never changes a measured value:
#
#   * every interrupted run exits 10 (signal) with an "interrupted"
#     section in its JSON, or 0 if it happened to finish first;
#   * the final resumed run exits 0 with "interrupted": null and no
#     point failures;
#   * the traffic store after the storm is entry-for-entry identical to
#     the store of one uninterrupted golden run, and the figure series
#     in the JSON match bit-for-bit.
#
# Usage: scripts/cancel_storm.sh [path/to/repro] [rounds]
set -ueo pipefail

REPRO=${1:-target/release/repro}
ROUNDS=${2:-5}
TARGETS=(fig1 sweep faultcheck)
WORK=$(mktemp -d -t cancel-storm-XXXXXX)
trap 'rm -rf "$WORK"' EXIT

echo "== cancel storm: golden run =="
"$REPRO" --store "$WORK/golden.txt" --json "$WORK/golden.json" \
    --threads 2 "${TARGETS[@]}" >/dev/null

echo "== cancel storm: $ROUNDS interrupted runs =="
for i in $(seq 1 "$ROUNDS"); do
    # Randomized kill delay in [0.1, 1.3)s: early enough to land
    # mid-sweep, spread enough to hit different points each round.
    delay=$(awk -v r="$RANDOM" 'BEGIN { printf "%.3f", 0.1 + (r % 1200) / 1000 }')
    "$REPRO" --store "$WORK/storm.txt" --json "$WORK/storm.json" \
        --threads 2 "${TARGETS[@]}" >/dev/null 2>"$WORK/storm.err" &
    pid=$!
    sleep "$delay"
    kill -INT "$pid" 2>/dev/null || true
    set +e
    wait "$pid"
    code=$?
    set -e
    echo "round $i: delay ${delay}s, exit $code"
    if [ "$code" != 10 ] && [ "$code" != 0 ]; then
        echo "FAIL: interrupted run must exit 10 (or 0 if already done), got $code"
        cat "$WORK/storm.err"
        exit 1
    fi
    if [ "$code" = 10 ] && ! grep -q '"exit_code": 10' "$WORK/storm.json"; then
        echo "FAIL: interrupted JSON must carry the interrupted section"
        cat "$WORK/storm.json"
        exit 1
    fi
done

echo "== cancel storm: final resumed run =="
"$REPRO" --store "$WORK/storm.txt" --json "$WORK/final.json" \
    --threads 2 "${TARGETS[@]}" >/dev/null

python3 - "$WORK" <<'EOF'
import json, sys
work = sys.argv[1]

def store_entries(path):
    with open(path) as f:
        return sorted(l for l in f.read().splitlines() if l and not l.startswith("#"))

golden = json.load(open(f"{work}/golden.json"))
final = json.load(open(f"{work}/final.json"))
assert final["interrupted"] is None, final["interrupted"]
assert final["failures"] == [], final["failures"]
assert golden["figures"] == final["figures"], "figure series diverged after storm"
g, s = store_entries(f"{work}/golden.txt"), store_entries(f"{work}/storm.txt")
assert g == s, f"stores diverged: {len(g)} golden vs {len(s)} storm entries"
print(f"cancel storm OK: {len(s)} store entries and all figure series bit-identical")
EOF
