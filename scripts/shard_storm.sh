#!/usr/bin/env bash
# Shard storm: run the multi-process sweep fabric while randomly
# SIGKILLing its workers, then resume once without interference.
# Verifies the fabric's crash-tolerance claims end to end:
#
#   * a worker shot mid-measurement never loses a completed point —
#     its shard store keeps every fully-appended line, the orphaned
#     claim is reclaimed, and a replacement worker resumes the shard;
#   * every coordinator exit is from the documented taxonomy: 0 (done),
#     or 14 (stalled — respawn budget shot out from under it), which
#     the next round resumes from;
#   * the merged canonical store after the storm is bit-for-bit
#     identical to a serial golden run (1 shard, 1 worker): shard
#     count, worker interleaving, and crash/reclaim history must leave
#     no fingerprint in the bytes.
#
# Usage: scripts/shard_storm.sh [path/to/repro] [rounds]
set -ueo pipefail

REPRO=${1:-target/release/repro}
ROUNDS=${2:-3}
TARGETS=(sweep faultcheck)
WORK=$(mktemp -d -t shard-storm-XXXXXX)
trap 'rm -rf "$WORK"' EXIT

echo "== shard storm: serial golden (1 shard, 1 worker) =="
"$REPRO" --store "$WORK/golden.txt" --threads 2 \
    --shards 1 --workers 1 "${TARGETS[@]}" >/dev/null

echo "== shard storm: $ROUNDS stormed fabric runs =="
total_kills=0
for i in $(seq 1 "$ROUNDS"); do
    # Fresh store each round so every round has live workers to shoot;
    # the last round's (possibly stalled) state feeds the final resume.
    rm -f "$WORK/storm.txt" "$WORK/storm.txt".*
    "$REPRO" --store "$WORK/storm.txt" --json "$WORK/storm.json" \
        --threads 2 --shards 4 --workers 3 --heartbeat-stale 2 \
        --fabric-respawns 24 "${TARGETS[@]}" >/dev/null 2>"$WORK/storm.err" &
    coord=$!
    kills=0
    while kill -0 "$coord" 2>/dev/null; do
        # The whole worker fleet lives only a few hundred ms in release
        # builds, so the kill cadence must be well inside that window.
        sleep "$(awk -v r="$RANDOM" 'BEGIN { printf "%.3f", 0.02 + (r % 80) / 1000 }')"
        # Shoot one live worker of this coordinator, if any.
        victim=$(pgrep -P "$coord" -f 'shard-worker' | shuf -n 1 || true)
        if [ -n "${victim:-}" ]; then
            kill -KILL "$victim" 2>/dev/null || true
            kills=$((kills + 1))
        fi
    done
    total_kills=$((total_kills + kills))
    set +e
    wait "$coord"
    code=$?
    set -e
    echo "round $i: $kills worker kill(s), coordinator exit $code"
    case "$code" in
        0) ;;
        14) ;; # respawn budget shot dry: the next round resumes the work
        *)
            echo "FAIL: coordinator exit $code is outside the documented taxonomy"
            cat "$WORK/storm.err"
            exit 1
            ;;
    esac
done
if [ "$total_kills" -eq 0 ]; then
    echo "FAIL: no SIGKILL ever landed on a worker; the storm was vacuous"
    exit 1
fi

echo "== shard storm: final resumed fabric (no interference) =="
"$REPRO" --store "$WORK/storm.txt" --json "$WORK/final.json" \
    --threads 2 --shards 4 --workers 3 --heartbeat-stale 2 "${TARGETS[@]}" >/dev/null

if ! cmp -s "$WORK/golden.txt" "$WORK/storm.txt"; then
    echo "FAIL: merged store differs from the serial golden"
    diff "$WORK/golden.txt" "$WORK/storm.txt" | head -20
    exit 1
fi
entries=$(grep -vc '^#' "$WORK/golden.txt")
echo "shard storm OK: $entries store entries bit-identical to the serial golden"
