#!/usr/bin/env bash
# Serve storm: run the schedule-query service under a client herd while
# injecting request drops and a wedged measurement (REPRO_FAULT),
# SIGKILLing random clients and then the server itself mid-activity,
# restarting it, and replaying the full request list. Verifies the
# service's crash-tolerance claims end to end:
#
#   * a client shot (or dropped by an injected socket fault) mid-request
#     never wedges the server — later requests on fresh connections are
#     answered;
#   * a server shot mid-measurement (the injected hang is the window the
#     SIGKILL lands in) never corrupts the store — the restarted server
#     quarantines any torn tail and re-measures only what was lost;
#   * after the final drain, the store is bit-for-bit identical to a
#     serial golden run: herd interleaving, coalescing, injected faults,
#     and crash/restart history must leave no fingerprint in the bytes.
#
# Usage: scripts/serve_storm.sh [path/to/repro] [rounds]
set -ueo pipefail

REPRO=${1:-target/release/repro}
ROUNDS=${2:-3}
WORK=$(mktemp -d -t serve-storm-XXXXXX)
trap 'rm -rf "$WORK"' EXIT

# The fixed request list. Every round's herd draws from exactly this
# list, so the set of measured points — and therefore the compacted
# store bytes — is a pure function of the list, not of the storm.
REQUESTS=(
    '{"machine":"i5","n":8,"threads":2,"top":2}'
    '{"machine":"i5","n":16,"threads":4,"top":1}'
    '{"machine":"magny","n":8,"threads":4,"top":1}'
    '{"machine":"sandy","n":8,"threads":2,"top":1}'
)

SERVER=
PORT=

# Start the service on an ephemeral port against store $1, stderr to
# $2; scrape the bound port from the banner.
start_server() {
    "$REPRO" serve --addr 127.0.0.1:0 --store "$1" --threads 2 2>"$2" &
    SERVER=$!
    PORT=
    for _ in $(seq 1 200); do
        PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$2" | head -1)
        [ -n "$PORT" ] && return 0
        if ! kill -0 "$SERVER" 2>/dev/null; then break; fi
        sleep 0.05
    done
    echo "FAIL: server never printed its bound address"
    cat "$2"
    exit 1
}

# One request, one response line on stdout (empty when the connection
# was dropped without an answer).
ask() {
    local resp=""
    exec 3<>"/dev/tcp/127.0.0.1/$1" || return 1
    printf '%s\n' "$2" >&3
    IFS= read -r resp <&3 || true
    exec 3>&- 3<&-
    printf '%s\n' "$resp"
}

# Serially replay the full request list; every answer must be ok.
replay_all() {
    local req resp
    for req in "${REQUESTS[@]}"; do
        resp=$(ask "$PORT" "$req") || { echo "FAIL: connect to :$PORT"; exit 1; }
        if ! grep -q '"ok":true' <<<"$resp"; then
            echo "FAIL: request $req answered: $resp"
            exit 1
        fi
    done
}

# SIGTERM the server and require the documented drain exit (10).
drain_server() {
    kill -TERM "$SERVER" 2>/dev/null || true
    set +e
    wait "$SERVER"
    local code=$?
    set -e
    if [ "$code" -ne 10 ]; then
        echo "FAIL: drained server exit $code, want 10"
        exit 1
    fi
}

echo "== serve storm: serial golden run =="
start_server "$WORK/golden.txt" "$WORK/golden.err"
replay_all
drain_server

echo "== serve storm: $ROUNDS stormed rounds =="
client_kills=0
hangs_fired=0
for i in $(seq 1 "$ROUNDS"); do
    # Fresh store each round so every round has cold measurements to
    # shoot the server out of; the hang wedges one of them open.
    rm -f "$WORK/storm.txt" "$WORK/storm.txt".*
    REPRO_FAULT="hang-sim:$((RANDOM % 4)),drop-req:$((RANDOM % 8))" \
        "$REPRO" serve --addr 127.0.0.1:0 --store "$WORK/storm.txt" \
        --threads 2 2>"$WORK/storm.err" &
    SERVER=$!
    PORT=
    for _ in $(seq 1 200); do
        PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/storm.err" | head -1)
        [ -n "$PORT" ] && break
        sleep 0.05
    done
    [ -n "$PORT" ] || { echo "FAIL: stormed server never bound"; cat "$WORK/storm.err"; exit 1; }

    # Herd: clients hammering random requests from the fixed list.
    herd=()
    for _ in $(seq 1 6); do
        (
            while true; do
                req=${REQUESTS[$((RANDOM % ${#REQUESTS[@]}))]}
                ask "$PORT" "$req" >/dev/null 2>&1 || true
            done
        ) &
        herd+=($!)
        disown $! # keep SIGKILLed clients out of bash's job reports
    done

    # Shoot random clients mid-flight, then the server itself.
    sleep "$(awk -v r="$RANDOM" 'BEGIN { printf "%.3f", 0.1 + (r % 300) / 1000 }')"
    for _ in 1 2 3; do
        victim=${herd[$((RANDOM % ${#herd[@]}))]}
        if kill -KILL "$victim" 2>/dev/null; then
            client_kills=$((client_kills + 1))
        fi
        sleep "$(awk -v r="$RANDOM" 'BEGIN { printf "%.3f", 0.02 + (r % 80) / 1000 }')"
    done
    kill -KILL "$SERVER" 2>/dev/null || true
    set +e
    wait "$SERVER" 2>/dev/null
    for c in "${herd[@]}"; do
        kill -KILL "$c" 2>/dev/null
    done
    set -e
    if grep -q 'hanging simulation' "$WORK/storm.err"; then
        hangs_fired=$((hangs_fired + 1))
    fi

    # Restart without faults: recover the store, finish the list, drain.
    start_server "$WORK/storm.txt" "$WORK/restart.err"
    replay_all
    drain_server

    if ! cmp -s "$WORK/golden.txt" "$WORK/storm.txt"; then
        echo "FAIL: round $i store differs from the serial golden"
        diff "$WORK/golden.txt" "$WORK/storm.txt" | head -20
        exit 1
    fi
    echo "round $i: store bit-identical to the serial golden"
done

if [ "$client_kills" -eq 0 ]; then
    echo "FAIL: no SIGKILL ever landed on a client; the storm was vacuous"
    exit 1
fi
if [ "$hangs_fired" -eq 0 ]; then
    echo "FAIL: the injected hang never fired; the server kills landed in no window"
    exit 1
fi
entries=$(grep -vc '^#' "$WORK/golden.txt")
echo "serve storm OK: $entries store entries, $client_kills client kill(s), \
$hangs_fired wedged round(s), every store bit-identical to the serial golden"
